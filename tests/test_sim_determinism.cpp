/**
 * @file
 * Seed-determinism tests: the same common/rng.hpp seed must yield
 * the same random task graph and the same engine trace on every run
 * (the property the golden-file harness relies on), while different
 * seeds must actually explore different graphs.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "sim/engine.hpp"
#include "sim/fault.hpp"
#include "sim/task_graph.hpp"

#include "sim_test_util.hpp"

namespace amped {
namespace sim {
namespace {

using testutil::traceFingerprint;

/** Structural fingerprint of a generated graph. */
std::string
graphFingerprint(const testutil::RandomGraph &rg)
{
    std::ostringstream oss;
    oss.precision(17);
    oss << rg.numResources << '\n';
    for (std::size_t t = 0; t < rg.graph.taskCount(); ++t) {
        oss << rg.taskOwner[t] << ' ' << rg.durations[t] << ' '
            << rg.latencies[t];
        for (TaskId succ :
             rg.graph.task(static_cast<TaskId>(t)).successors)
            oss << ' ' << succ;
        oss << '\n';
    }
    return oss.str();
}

TEST(SeedDeterminism, SameSeedSameRandomGraph)
{
    for (std::uint64_t seed : {1ULL, 7ULL, 0x5eed5eedULL}) {
        Rng first_rng(seed);
        Rng second_rng(seed);
        const auto first = testutil::makeRandomGraph(first_rng);
        const auto second = testutil::makeRandomGraph(second_rng);
        EXPECT_EQ(graphFingerprint(first), graphFingerprint(second))
            << "seed " << seed;
    }
}

TEST(SeedDeterminism, SameSeedSameEngineTrace)
{
    for (std::uint64_t seed : {1ULL, 7ULL, 0x5eed5eedULL}) {
        Rng first_rng(seed);
        Rng second_rng(seed);
        auto first_graph = testutil::makeRandomGraph(first_rng);
        auto second_graph = testutil::makeRandomGraph(second_rng);
        Engine engine;
        const auto first = engine.run(first_graph.graph);
        const auto second = engine.run(second_graph.graph);
        EXPECT_EQ(traceFingerprint(first), traceFingerprint(second))
            << "seed " << seed;
    }
}

TEST(SeedDeterminism, DifferentSeedsDifferentGraphs)
{
    // Any fixed pair could collide in principle; over five seeds the
    // generator must produce at least two distinct graphs (in
    // practice all five differ).
    std::vector<std::string> fingerprints;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        Rng rng(seed);
        fingerprints.push_back(
            graphFingerprint(testutil::makeRandomGraph(rng)));
    }
    bool any_differ = false;
    for (std::size_t i = 1; i < fingerprints.size(); ++i)
        any_differ |= fingerprints[i] != fingerprints[0];
    EXPECT_TRUE(any_differ);
    // And the default-seed graph differs from seed-1 (regression
    // guard for the documented default 0x5eed5eed).
    Rng default_rng;
    EXPECT_NE(graphFingerprint(testutil::makeRandomGraph(default_rng)),
              fingerprints[0]);
}

TEST(SeedDeterminism, RngSequenceIsReproducible)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.uniformInt(0, 1000000), b.uniformInt(0, 1000000));
        EXPECT_EQ(a.uniformReal(0.0, 1.0), b.uniformReal(0.0, 1.0));
        EXPECT_EQ(a.bernoulli(0.5), b.bernoulli(0.5));
    }
    // Diverging draws desynchronize the streams.
    (void)a.uniformInt(0, 1);
    bool diverged = false;
    for (int i = 0; i < 10 && !diverged; ++i)
        diverged = a.uniformInt(0, 1000000) != b.uniformInt(0, 1000000);
    EXPECT_TRUE(diverged);
}

TEST(SeedDeterminism, EngineRerunIsIdentical)
{
    Rng rng(1234);
    auto rg = testutil::makeRandomGraph(rng);
    Engine engine;
    const auto first = engine.run(rg.graph);
    const auto second = engine.run(rg.graph);
    EXPECT_EQ(traceFingerprint(first), traceFingerprint(second));
}

/** A fault spec that exercises every perturbation class. */
FaultSpec
spicyFaultSpec(std::uint64_t seed)
{
    FaultSpec spec;
    spec.seed = seed;
    spec.stragglerProbability = 0.5;
    spec.stragglerSlowdownMin = 1.1;
    spec.stragglerSlowdownMax = 2.0;
    spec.linkDegradationProbability = 0.4;
    spec.linkSlowdownMin = 1.2;
    spec.linkSlowdownMax = 3.0;
    spec.linkLatencyJitter = 0.2;
    spec.failureRate = 0.3;
    spec.failureHorizon = 2.0;
    return spec;
}

TEST(FaultDeterminism, SameSeedSameFaultPlanAndOutcome)
{
    for (std::uint64_t seed : {1ULL, 7ULL, 0x5eed5eedULL}) {
        Rng graph_rng(seed);
        auto rg = testutil::makeRandomGraph(graph_rng);
        const auto spec = spicyFaultSpec(seed);
        const auto plan_a = FaultPlan::generate(rg.graph, spec);
        const auto plan_b = FaultPlan::generate(rg.graph, spec);
        ASSERT_EQ(plan_a.failures().size(), plan_b.failures().size());
        for (std::size_t i = 0; i < plan_a.failures().size(); ++i) {
            EXPECT_EQ(plan_a.failures()[i].resource,
                      plan_b.failures()[i].resource);
            EXPECT_EQ(plan_a.failures()[i].time,
                      plan_b.failures()[i].time);
        }
        Engine engine;
        const auto first = engine.run(rg.graph, plan_a);
        const auto second = engine.run(rg.graph, plan_b);
        EXPECT_EQ(traceFingerprint(first.result),
                  traceFingerprint(second.result))
            << "seed " << seed;
        EXPECT_EQ(testutil::failureFingerprint(first.failure),
                  testutil::failureFingerprint(second.failure))
            << "seed " << seed;
    }
}

TEST(FaultDeterminism, OutcomeIsByteIdenticalAcrossThreadCounts)
{
    // The ISSUE contract: same seed + same FaultPlan must yield a
    // byte-identical FailureOutcome whether replications run on one
    // worker or four.  Each replication writes its fingerprints into
    // its own slot; the concatenation is then compared across pools
    // (the same mechanism AMPED_THREADS=1 vs =4 exercises in CI).
    constexpr std::size_t replications = 24;
    const auto run_all = [&](unsigned threads) {
        ThreadPool pool(threads);
        std::vector<std::string> fingerprints(replications);
        pool.parallelFor(replications, 1, [&](std::size_t r) {
            Rng graph_rng(100 + r);
            auto rg = testutil::makeRandomGraph(graph_rng);
            const auto spec = spicyFaultSpec(100 + r);
            const auto plan = FaultPlan::generate(rg.graph, spec);
            Engine engine;
            const auto outcome = engine.run(rg.graph, plan);
            fingerprints[r] =
                testutil::traceFingerprint(outcome.result)
                + testutil::failureFingerprint(outcome.failure);
        });
        std::string all;
        for (const auto &fp : fingerprints)
            all += fp;
        return all;
    };
    EXPECT_EQ(run_all(1), run_all(4));
}

} // namespace
} // namespace sim
} // namespace amped

/**
 * @file
 * Seed-determinism tests: the same common/rng.hpp seed must yield
 * the same random task graph and the same engine trace on every run
 * (the property the golden-file harness relies on), while different
 * seeds must actually explore different graphs.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.hpp"
#include "sim/engine.hpp"
#include "sim/task_graph.hpp"

#include "sim_test_util.hpp"

namespace amped {
namespace sim {
namespace {

/** Canonical string form of a run: every interval of every resource. */
std::string
traceFingerprint(const SimResult &result)
{
    std::ostringstream oss;
    oss.precision(17);
    oss << result.makespan << '\n';
    for (std::size_t r = 0; r < result.resources.size(); ++r) {
        for (const auto &interval : result.resources[r].intervals) {
            oss << r << ' ' << interval.task << ' '
                << interval.start << ' ' << interval.end << '\n';
        }
    }
    return oss.str();
}

/** Structural fingerprint of a generated graph. */
std::string
graphFingerprint(const testutil::RandomGraph &rg)
{
    std::ostringstream oss;
    oss.precision(17);
    oss << rg.numResources << '\n';
    for (std::size_t t = 0; t < rg.graph.taskCount(); ++t) {
        oss << rg.taskOwner[t] << ' ' << rg.durations[t] << ' '
            << rg.latencies[t];
        for (TaskId succ :
             rg.graph.task(static_cast<TaskId>(t)).successors)
            oss << ' ' << succ;
        oss << '\n';
    }
    return oss.str();
}

TEST(SeedDeterminism, SameSeedSameRandomGraph)
{
    for (std::uint64_t seed : {1ULL, 7ULL, 0x5eed5eedULL}) {
        Rng first_rng(seed);
        Rng second_rng(seed);
        const auto first = testutil::makeRandomGraph(first_rng);
        const auto second = testutil::makeRandomGraph(second_rng);
        EXPECT_EQ(graphFingerprint(first), graphFingerprint(second))
            << "seed " << seed;
    }
}

TEST(SeedDeterminism, SameSeedSameEngineTrace)
{
    for (std::uint64_t seed : {1ULL, 7ULL, 0x5eed5eedULL}) {
        Rng first_rng(seed);
        Rng second_rng(seed);
        auto first_graph = testutil::makeRandomGraph(first_rng);
        auto second_graph = testutil::makeRandomGraph(second_rng);
        Engine engine;
        const auto first = engine.run(first_graph.graph);
        const auto second = engine.run(second_graph.graph);
        EXPECT_EQ(traceFingerprint(first), traceFingerprint(second))
            << "seed " << seed;
    }
}

TEST(SeedDeterminism, DifferentSeedsDifferentGraphs)
{
    // Any fixed pair could collide in principle; over five seeds the
    // generator must produce at least two distinct graphs (in
    // practice all five differ).
    std::vector<std::string> fingerprints;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        Rng rng(seed);
        fingerprints.push_back(
            graphFingerprint(testutil::makeRandomGraph(rng)));
    }
    bool any_differ = false;
    for (std::size_t i = 1; i < fingerprints.size(); ++i)
        any_differ |= fingerprints[i] != fingerprints[0];
    EXPECT_TRUE(any_differ);
    // And the default-seed graph differs from seed-1 (regression
    // guard for the documented default 0x5eed5eed).
    Rng default_rng;
    EXPECT_NE(graphFingerprint(testutil::makeRandomGraph(default_rng)),
              fingerprints[0]);
}

TEST(SeedDeterminism, RngSequenceIsReproducible)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.uniformInt(0, 1000000), b.uniformInt(0, 1000000));
        EXPECT_EQ(a.uniformReal(0.0, 1.0), b.uniformReal(0.0, 1.0));
        EXPECT_EQ(a.bernoulli(0.5), b.bernoulli(0.5));
    }
    // Diverging draws desynchronize the streams.
    (void)a.uniformInt(0, 1);
    bool diverged = false;
    for (int i = 0; i < 10 && !diverged; ++i)
        diverged = a.uniformInt(0, 1000000) != b.uniformInt(0, 1000000);
    EXPECT_TRUE(diverged);
}

TEST(SeedDeterminism, EngineRerunIsIdentical)
{
    Rng rng(1234);
    auto rg = testutil::makeRandomGraph(rng);
    Engine engine;
    const auto first = engine.run(rg.graph);
    const auto second = engine.run(rg.graph);
    EXPECT_EQ(traceFingerprint(first), traceFingerprint(second));
}

} // namespace
} // namespace sim
} // namespace amped

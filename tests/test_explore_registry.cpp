/**
 * @file
 * Tests for the name-based preset registries.
 */

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "explore/registry.hpp"

namespace amped {
namespace explore {
namespace {

TEST(RegistryTest, EveryListedModelResolves)
{
    for (const auto &name : modelNames()) {
        const auto cfg = modelByName(name);
        EXPECT_NO_THROW(cfg.validate()) << name;
    }
}

TEST(RegistryTest, ModelLookupIsCaseInsensitive)
{
    EXPECT_EQ(modelByName("GPT3").name, modelByName("gpt3").name);
    EXPECT_EQ(modelByName("145B").name, "Megatron 145B");
    EXPECT_EQ(modelByName("glam").moe.numExperts, 64);
}

TEST(RegistryTest, EveryListedAcceleratorResolves)
{
    for (const auto &name : acceleratorNames()) {
        const auto cfg = acceleratorByName(name);
        EXPECT_NO_THROW(cfg.validate()) << name;
    }
    EXPECT_NEAR(acceleratorByName("A100").peakMacFlops().value() / 1e12,
                312.0, 1.0);
}

TEST(RegistryTest, EveryListedInterconnectResolves)
{
    for (const auto &name : interconnectNames()) {
        const auto link = interconnectByName(name);
        EXPECT_NO_THROW(link.validate()) << name;
    }
    EXPECT_DOUBLE_EQ(interconnectByName("hdr").bandwidth.value(), 2e11);
}

TEST(RegistryTest, UnknownNamesListAlternatives)
{
    try {
        modelByName("gpt5");
        FAIL() << "no exception";
    } catch (const UserError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("gpt5"), std::string::npos);
        EXPECT_NE(what.find("145b"), std::string::npos);
    }
    EXPECT_THROW(acceleratorByName("tpu"), UserError);
    EXPECT_THROW(interconnectByName("ethernet"), UserError);
}

} // namespace
} // namespace explore
} // namespace amped

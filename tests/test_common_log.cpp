/**
 * @file
 * Tests for the inform/warn status-message helpers.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/log.hpp"

namespace amped {
namespace log {
namespace {

/** Captures std::cerr for the scope of a test. */
class CerrCapture
{
  public:
    CerrCapture() : old_(std::cerr.rdbuf(buffer_.rdbuf())) {}
    ~CerrCapture() { std::cerr.rdbuf(old_); }
    std::string text() const { return buffer_.str(); }

  private:
    std::ostringstream buffer_;
    std::streambuf *old_;
};

TEST(LogTest, InformAndWarnArePrefixed)
{
    CerrCapture capture;
    setEnabled(true);
    inform("loaded ", 3, " presets");
    warn("efficiency clamped at floor ", 0.25);
    EXPECT_NE(capture.text().find("info: loaded 3 presets"),
              std::string::npos);
    EXPECT_NE(capture.text().find(
                  "warn: efficiency clamped at floor 0.25"),
              std::string::npos);
}

TEST(LogTest, DisablingSilencesOutput)
{
    CerrCapture capture;
    const bool previous = setEnabled(false);
    inform("hidden");
    warn("also hidden");
    EXPECT_TRUE(capture.text().empty());
    setEnabled(previous);
}

TEST(LogTest, SilencerRestoresState)
{
    setEnabled(true);
    {
        Silencer silencer;
        EXPECT_FALSE(enabled());
        CerrCapture capture;
        inform("silenced");
        EXPECT_TRUE(capture.text().empty());
    }
    EXPECT_TRUE(enabled());
}

TEST(LogTest, SetEnabledReturnsPreviousState)
{
    setEnabled(true);
    EXPECT_TRUE(setEnabled(false));
    EXPECT_FALSE(setEnabled(true));
}

} // namespace
} // namespace log
} // namespace amped

/**
 * @file
 * Tests for utilization-trace rendering.
 */

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"

namespace amped {
namespace sim {
namespace {

ResourceStats
statsWith(std::vector<BusyInterval> intervals)
{
    ResourceStats stats;
    for (const auto &iv : intervals)
        stats.busyTime += iv.end - iv.start;
    stats.intervals = std::move(intervals);
    return stats;
}

TEST(BusyFractionTest, FullPartialAndEmptyBuckets)
{
    const auto stats = statsWith({{0.0, 1.0, 0}, {2.0, 3.0, 1}});
    EXPECT_DOUBLE_EQ(busyFraction(stats, 0.0, 1.0), 1.0);
    EXPECT_DOUBLE_EQ(busyFraction(stats, 1.0, 2.0), 0.0);
    EXPECT_DOUBLE_EQ(busyFraction(stats, 0.5, 2.5), 0.5);
    EXPECT_DOUBLE_EQ(busyFraction(stats, 0.0, 4.0), 0.5);
    EXPECT_THROW(busyFraction(stats, 1.0, 1.0), UserError);
}

TEST(TimelineTest, RendersOneRowPerDevice)
{
    TaskGraph graph;
    const auto d0 = graph.addDevice("gpu0");
    const auto d1 = graph.addDevice("gpu1");
    const auto a = graph.addCompute(d0, Seconds{2.0}, "a");
    const auto b = graph.addCompute(d1, Seconds{2.0}, "b");
    graph.addDependency(a, b);
    Engine engine;
    const auto result = engine.run(graph);

    const std::string out = renderUtilizationTimeline(
        result, {d0, d1}, {"gpu0", "gpu1"}, 10);
    // Two device rows plus the timeline footer.
    EXPECT_NE(out.find("gpu0"), std::string::npos);
    EXPECT_NE(out.find("gpu1"), std::string::npos);
    EXPECT_NE(out.find("50.0 % busy"), std::string::npos);
    EXPECT_NE(out.find("timeline: 0 .. "), std::string::npos);
    // gpu0 is busy in the first half: its row starts with '9's and
    // ends with '.'s; gpu1 mirrors it.
    EXPECT_NE(out.find("gpu0 |99999....."), std::string::npos);
    EXPECT_NE(out.find("gpu1 |.....99999"), std::string::npos);
}

TEST(TimelineTest, ValidatesArguments)
{
    SimResult empty;
    EXPECT_EQ(renderUtilizationTimeline(empty, {}, {}, 10),
              "(empty trace)\n");
    SimResult result;
    result.makespan = 1.0;
    result.resources.resize(1);
    // Mismatched devices/names report both counts in the message.
    try {
        renderUtilizationTimeline(result, {0}, {"a", "b"}, 10);
        FAIL() << "expected UserError";
    } catch (const UserError &error) {
        const std::string what = error.what();
        EXPECT_NE(what.find("one name per device"),
                  std::string::npos);
        EXPECT_NE(what.find("1 devices"), std::string::npos);
        EXPECT_NE(what.find("2 names"), std::string::npos);
    }
    EXPECT_THROW(renderUtilizationTimeline(result, {0}, {"a"}, 0),
                 UserError);
    // Device ids outside the result's resource range are rejected
    // rather than read out of bounds.
    EXPECT_THROW(renderUtilizationTimeline(result, {1}, {"b"}, 10),
                 UserError);
    EXPECT_THROW(renderUtilizationTimeline(result, {-1}, {"b"}, 10),
                 UserError);
}

} // namespace
} // namespace sim
} // namespace amped

/**
 * @file
 * Property tests of the discrete-event engine on randomly generated
 * DAGs: for any graph, the makespan must lie between the critical-
 * path lower bound and the serial upper bound, per-resource busy
 * time must equal the sum of that resource's task durations, and
 * repeated runs must be bit-identical (determinism).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "sim/engine.hpp"
#include "sim/task_graph.hpp"

#include "sim_test_util.hpp"

namespace amped {
namespace sim {
namespace {

class RandomDagProperty : public ::testing::TestWithParam<int>
{};

TEST_P(RandomDagProperty, MakespanWithinBounds)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    auto rg = testutil::makeRandomGraph(rng);
    Engine engine;
    const auto result = engine.run(rg.graph);

    const double lower = testutil::criticalPath(rg);
    double upper = 0.0;
    for (std::size_t t = 0; t < rg.durations.size(); ++t)
        upper += rg.durations[t] + rg.latencies[t];
    EXPECT_GE(result.makespan, lower - 1e-9);
    EXPECT_LE(result.makespan, upper + 1e-9);
}

TEST_P(RandomDagProperty, BusyTimeMatchesTaskDurations)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    auto rg = testutil::makeRandomGraph(rng);
    Engine engine;
    const auto result = engine.run(rg.graph);

    std::vector<double> expected(rg.numResources, 0.0);
    for (std::size_t t = 0; t < rg.durations.size(); ++t)
        expected[rg.taskOwner[t]] += rg.durations[t];
    for (std::size_t r = 0; r < rg.numResources; ++r) {
        EXPECT_NEAR(result.resources[r].busyTime, expected[r], 1e-9)
            << "resource " << r;
        // Busy intervals never overlap (resources are exclusive).
        const auto &intervals = result.resources[r].intervals;
        for (std::size_t i = 1; i < intervals.size(); ++i) {
            EXPECT_GE(intervals[i].start,
                      intervals[i - 1].end - 1e-12);
        }
    }
}

TEST_P(RandomDagProperty, RunsAreDeterministic)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    auto rg = testutil::makeRandomGraph(rng);
    Engine engine;
    const auto first = engine.run(rg.graph);
    const auto second = engine.run(rg.graph);
    EXPECT_DOUBLE_EQ(first.makespan, second.makespan);
    for (std::size_t r = 0; r < rg.numResources; ++r) {
        ASSERT_EQ(first.resources[r].intervals.size(),
                  second.resources[r].intervals.size());
        for (std::size_t i = 0;
             i < first.resources[r].intervals.size(); ++i) {
            EXPECT_DOUBLE_EQ(first.resources[r].intervals[i].start,
                             second.resources[r].intervals[i].start);
            EXPECT_EQ(first.resources[r].intervals[i].task,
                      second.resources[r].intervals[i].task);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDagProperty,
                         ::testing::Range(1, 21));

} // namespace
} // namespace sim
} // namespace amped

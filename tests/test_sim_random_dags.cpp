/**
 * @file
 * Property tests of the discrete-event engine on randomly generated
 * DAGs: for any graph, the makespan must lie between the critical-
 * path lower bound and the serial upper bound, per-resource busy
 * time must equal the sum of that resource's task durations, and
 * repeated runs must be bit-identical (determinism).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "sim/engine.hpp"
#include "sim/task_graph.hpp"

namespace amped {
namespace sim {
namespace {

struct RandomGraph
{
    TaskGraph graph;
    std::vector<double> durations;      ///< Per task.
    std::vector<double> latencies;      ///< Per task.
    std::vector<ResourceId> taskOwner;  ///< Resource per task.
    std::size_t numResources = 0;
};

/** Random layered DAG: edges only go to later tasks (acyclic). */
RandomGraph
makeRandomGraph(Rng &rng)
{
    RandomGraph out;
    const std::int64_t n_devices = rng.uniformInt(1, 4);
    const std::int64_t n_channels = rng.uniformInt(1, 3);
    std::vector<ResourceId> devices, channels;
    for (std::int64_t d = 0; d < n_devices; ++d)
        devices.push_back(
            out.graph.addDevice("d" + std::to_string(d)));
    for (std::int64_t c = 0; c < n_channels; ++c)
        channels.push_back(
            out.graph.addChannel("c" + std::to_string(c)));
    out.numResources =
        static_cast<std::size_t>(n_devices + n_channels);

    const std::int64_t n_tasks = rng.uniformInt(2, 40);
    for (std::int64_t t = 0; t < n_tasks; ++t) {
        if (rng.bernoulli(0.7)) {
            const double duration = rng.uniformReal(0.0, 2.0);
            const auto device = devices[static_cast<std::size_t>(
                rng.uniformInt(0, n_devices - 1))];
            out.graph.addCompute(device, duration,
                                 "t" + std::to_string(t));
            out.durations.push_back(duration);
            out.latencies.push_back(0.0);
            out.taskOwner.push_back(device);
        } else {
            const double bits = rng.uniformReal(0.0, 1e9);
            const double bw = rng.uniformReal(1e8, 1e10);
            const double latency = rng.uniformReal(0.0, 0.01);
            const auto channel = channels[static_cast<std::size_t>(
                rng.uniformInt(0, n_channels - 1))];
            out.graph.addTransfer(channel, bits, bw, latency,
                                  "t" + std::to_string(t));
            out.durations.push_back(bits / bw);
            out.latencies.push_back(latency);
            out.taskOwner.push_back(channel);
        }
        // Random backward edges (guaranteed acyclic).
        const std::int64_t max_edges = std::min<std::int64_t>(t, 3);
        for (std::int64_t e = 0; e < max_edges; ++e) {
            if (rng.bernoulli(0.4)) {
                const TaskId pred = static_cast<TaskId>(
                    rng.uniformInt(0, t - 1));
                out.graph.addDependency(
                    pred, static_cast<TaskId>(t));
            }
        }
    }
    return out;
}

/** Longest dependency path (durations + latencies), resource-free. */
double
criticalPath(const RandomGraph &rg)
{
    const std::size_t n = rg.graph.taskCount();
    std::vector<double> finish(n, -1.0);
    // Tasks are topologically ordered by construction (edges go from
    // lower to higher ids), so one forward pass suffices.
    std::vector<double> start(n, 0.0);
    for (std::size_t t = 0; t < n; ++t) {
        finish[t] = start[t] + rg.durations[t] + rg.latencies[t];
        for (TaskId succ :
             rg.graph.task(static_cast<TaskId>(t)).successors) {
            start[succ] = std::max(start[succ], finish[t]);
        }
    }
    return *std::max_element(finish.begin(), finish.end());
}

class RandomDagProperty : public ::testing::TestWithParam<int>
{};

TEST_P(RandomDagProperty, MakespanWithinBounds)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    auto rg = makeRandomGraph(rng);
    Engine engine;
    const auto result = engine.run(rg.graph);

    const double lower = criticalPath(rg);
    double upper = 0.0;
    for (std::size_t t = 0; t < rg.durations.size(); ++t)
        upper += rg.durations[t] + rg.latencies[t];
    EXPECT_GE(result.makespan, lower - 1e-9);
    EXPECT_LE(result.makespan, upper + 1e-9);
}

TEST_P(RandomDagProperty, BusyTimeMatchesTaskDurations)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    auto rg = makeRandomGraph(rng);
    Engine engine;
    const auto result = engine.run(rg.graph);

    std::vector<double> expected(rg.numResources, 0.0);
    for (std::size_t t = 0; t < rg.durations.size(); ++t)
        expected[rg.taskOwner[t]] += rg.durations[t];
    for (std::size_t r = 0; r < rg.numResources; ++r) {
        EXPECT_NEAR(result.resources[r].busyTime, expected[r], 1e-9)
            << "resource " << r;
        // Busy intervals never overlap (resources are exclusive).
        const auto &intervals = result.resources[r].intervals;
        for (std::size_t i = 1; i < intervals.size(); ++i) {
            EXPECT_GE(intervals[i].start,
                      intervals[i - 1].end - 1e-12);
        }
    }
}

TEST_P(RandomDagProperty, RunsAreDeterministic)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    auto rg = makeRandomGraph(rng);
    Engine engine;
    const auto first = engine.run(rg.graph);
    const auto second = engine.run(rg.graph);
    EXPECT_DOUBLE_EQ(first.makespan, second.makespan);
    for (std::size_t r = 0; r < rg.numResources; ++r) {
        ASSERT_EQ(first.resources[r].intervals.size(),
                  second.resources[r].intervals.size());
        for (std::size_t i = 0;
             i < first.resources[r].intervals.size(); ++i) {
            EXPECT_DOUBLE_EQ(first.resources[r].intervals[i].start,
                             second.resources[r].intervals[i].start);
            EXPECT_EQ(first.resources[r].intervals[i].task,
                      second.resources[r].intervals[i].task);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDagProperty,
                         ::testing::Range(1, 21));

} // namespace
} // namespace sim
} // namespace amped

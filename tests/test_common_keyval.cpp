/**
 * @file
 * Tests for the key = value configuration reader.
 */

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/keyval.hpp"

namespace amped {
namespace {

TEST(KeyValueTest, ParsesBasicDocument)
{
    const auto config = KeyValueConfig::fromString(
        "# comment line\n"
        "name = my-model   # trailing comment\n"
        "layers=48\n"
        "\n"
        "  hidden  =  7168  \n");
    EXPECT_TRUE(config.has("name"));
    EXPECT_EQ(config.getString("name"), "my-model");
    EXPECT_EQ(config.getInt("layers"), 48);
    EXPECT_DOUBLE_EQ(config.getDouble("hidden"), 7168.0);
    EXPECT_FALSE(config.has("missing"));
}

TEST(KeyValueTest, DefaultsForMissingKeys)
{
    const auto config = KeyValueConfig::fromString("a = 1\n");
    EXPECT_EQ(config.getString("b", "fallback"), "fallback");
    EXPECT_DOUBLE_EQ(config.getDouble("b", 2.5), 2.5);
    EXPECT_EQ(config.getInt("b", 7), 7);
    // Present keys ignore the fallback.
    EXPECT_EQ(config.getInt("a", 99), 1);
}

TEST(KeyValueTest, MissingRequiredKeysThrow)
{
    const auto config = KeyValueConfig::fromString("");
    EXPECT_THROW(config.getString("x"), UserError);
    EXPECT_THROW(config.getDouble("x"), UserError);
    EXPECT_THROW(config.getInt("x"), UserError);
}

TEST(KeyValueTest, MalformedValuesThrow)
{
    const auto config =
        KeyValueConfig::fromString("n = not-a-number\n");
    EXPECT_THROW(config.getDouble("n"), UserError);
    EXPECT_THROW(config.getInt("n"), UserError);
}

TEST(KeyValueTest, MalformedLinesThrow)
{
    EXPECT_THROW(KeyValueConfig::fromString("no equals sign\n"),
                 UserError);
    EXPECT_THROW(KeyValueConfig::fromString(" = value\n"), UserError);
    EXPECT_THROW(KeyValueConfig::fromString("a = 1\na = 2\n"),
                 UserError);
}

TEST(KeyValueTest, ScientificNotationDoubles)
{
    const auto config =
        KeyValueConfig::fromString("tokens = 300e9\n");
    EXPECT_DOUBLE_EQ(config.getDouble("tokens"), 300e9);
}

TEST(KeyValueTest, RequireOnlyCatchesTypos)
{
    const auto config =
        KeyValueConfig::fromString("layes = 48\n"); // typo
    try {
        config.requireOnly({"layers", "hidden"});
        FAIL() << "no exception";
    } catch (const UserError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("layes"), std::string::npos);
        EXPECT_NE(what.find("layers"), std::string::npos);
    }
    EXPECT_NO_THROW(config.requireOnly({"layes"}));
}

TEST(KeyValueTest, MissingFileThrows)
{
    EXPECT_THROW(KeyValueConfig::fromFile("/nonexistent/path.cfg"),
                 UserError);
}

TEST(KeyValueTest, KeysAreSorted)
{
    const auto config =
        KeyValueConfig::fromString("b = 2\na = 1\nc = 3\n");
    EXPECT_EQ(config.keys(),
              (std::vector<std::string>{"a", "b", "c"}));
}

} // namespace
} // namespace amped

/**
 * @file
 * Tests for the per-accelerator memory-footprint model: component
 * accounting, ZeRO-stage sharding, activation recomputation, and
 * feasibility checks against real device capacities.
 */

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/memory_model.hpp"
#include "hw/presets.hpp"
#include "model/presets.hpp"

namespace amped {
namespace core {
namespace {

MemoryModel
makeModel(MemoryOptions options = {})
{
    return MemoryModel(model::OpCounter(model::presets::minGpt85M()),
                       hw::presets::v100Sxm3(), options);
}

TEST(MemoryModelTest, ComponentsArePositiveAndSum)
{
    const auto mm = makeModel();
    const auto m = mapping::makeMapping(1, 1, 1, 1, 1, 1);
    const auto fp = mm.footprint(m, 32.0, 32.0);
    EXPECT_GT(fp.parameterBytes, 0.0);
    EXPECT_GT(fp.gradientBytes, 0.0);
    EXPECT_GT(fp.optimizerBytes, 0.0);
    EXPECT_GT(fp.activationBytes, 0.0);
    EXPECT_DOUBLE_EQ(fp.totalBytes(),
                     fp.parameterBytes + fp.gradientBytes +
                         fp.optimizerBytes + fp.activationBytes +
                         fp.workspaceBytes);
}

TEST(MemoryModelTest, AdamOptimizerDominatesParameters)
{
    const auto mm = makeModel();
    const auto fp = mm.footprint(
        mapping::makeMapping(1, 1, 1, 1, 1, 1), 8.0, 8.0);
    // 12 bytes of Adam state vs 2 bytes of fp16 weights.
    EXPECT_NEAR(fp.optimizerBytes / fp.parameterBytes, 6.0, 0.01);
}

TEST(MemoryModelTest, MinGptFitsV100And175BDoesNot)
{
    // minGPT-85M easily fits a 32 GB V100.
    EXPECT_TRUE(makeModel().fits(
        mapping::makeMapping(1, 1, 1, 1, 1, 1), 32.0, 32.0));

    // GPT-3 175B on one device is hopeless.
    MemoryModel big(model::OpCounter(model::presets::gpt3_175B()),
                    hw::presets::a100());
    EXPECT_FALSE(big.fits(mapping::makeMapping(1, 1, 1, 1, 1, 1),
                          1.0, 1.0));
}

TEST(MemoryModelTest, TensorAndPipelineShardingReduceFootprint)
{
    MemoryModel mm(model::OpCounter(model::presets::gpt3_175B()),
                   hw::presets::a100());
    const double solo =
        mm.footprint(mapping::makeMapping(1, 1, 1, 1, 1, 1), 64.0, 1.0)
            .parameterBytes;
    const double tp8 =
        mm.footprint(mapping::makeMapping(8, 1, 1, 1, 1, 1), 64.0, 1.0)
            .parameterBytes;
    const double tp8pp8 =
        mm.footprint(mapping::makeMapping(8, 1, 1, 1, 8, 1), 64.0, 1.0)
            .parameterBytes;
    EXPECT_NEAR(solo / tp8, 8.0, 0.01);
    EXPECT_NEAR(solo / tp8pp8, 64.0, 0.1);
}

TEST(MemoryModelTest, ZeroStagesShardProgressively)
{
    const auto m = mapping::makeMapping(1, 1, 4, 1, 1, 4); // DP 16
    MemoryOptions plain;
    MemoryOptions z1;
    z1.zeroStage = ZeroStage::optimizer;
    MemoryOptions z2;
    z2.zeroStage = ZeroStage::gradients;
    MemoryOptions z3;
    z3.zeroStage = ZeroStage::parameters;

    const auto fp0 = makeModel(plain).footprint(m, 64.0, 4.0);
    const auto fp1 = makeModel(z1).footprint(m, 64.0, 4.0);
    const auto fp2 = makeModel(z2).footprint(m, 64.0, 4.0);
    const auto fp3 = makeModel(z3).footprint(m, 64.0, 4.0);

    // Stage 1: optimizer / 16, rest unchanged.
    EXPECT_NEAR(fp1.optimizerBytes, fp0.optimizerBytes / 16.0, 1.0);
    EXPECT_DOUBLE_EQ(fp1.gradientBytes, fp0.gradientBytes);
    EXPECT_DOUBLE_EQ(fp1.parameterBytes, fp0.parameterBytes);
    // Stage 2: + gradients / 16.
    EXPECT_NEAR(fp2.gradientBytes, fp0.gradientBytes / 16.0, 1.0);
    EXPECT_DOUBLE_EQ(fp2.parameterBytes, fp0.parameterBytes);
    // Stage 3: + parameters / 16.
    EXPECT_NEAR(fp3.parameterBytes, fp0.parameterBytes / 16.0, 1.0);
    // Monotone total reduction.
    EXPECT_GT(fp0.totalBytes(), fp1.totalBytes());
    EXPECT_GT(fp1.totalBytes(), fp2.totalBytes());
    EXPECT_GT(fp2.totalBytes(), fp3.totalBytes());
}

TEST(MemoryModelTest, RecomputeShrinksActivations)
{
    MemoryOptions with;
    with.activationRecompute = true;
    MemoryOptions without;
    without.activationRecompute = false;
    const auto m = mapping::makeMapping(1, 1, 1, 1, 1, 1);
    const double stored =
        makeModel(with).footprint(m, 8.0, 8.0).activationBytes;
    const double full =
        makeModel(without).footprint(m, 8.0, 8.0).activationBytes;
    EXPECT_LT(stored, full / 5.0);
}

TEST(MemoryModelTest, PipelineKeepsMicrobatchesInFlight)
{
    // GPipe-style residency: PP > 1 keeps N_PP microbatches alive by
    // default.
    const auto mm = makeModel();
    const auto solo = mapping::makeMapping(1, 1, 1, 1, 1, 1);
    const auto pp4 = mapping::makeMapping(1, 4, 1, 1, 1, 1);
    const double a1 =
        mm.footprint(solo, 8.0, 2.0).activationBytes;
    const double a4 = mm.footprint(pp4, 8.0, 2.0).activationBytes;
    // 4 stages: 1/4 of the layers per stage x 4 in flight = same
    // per-device activation bytes as the solo run.
    EXPECT_NEAR(a4 / a1, 1.0, 0.01);

    MemoryOptions pinned;
    pinned.activationsInFlightOverride = 1.0; // 1F1B-style residency
    const double a4_1f1b =
        makeModel(pinned).footprint(pp4, 8.0, 2.0).activationBytes;
    EXPECT_NEAR(a4_1f1b / a1, 0.25, 0.01);
}

TEST(MemoryModelTest, LargestFittingMicrobatchIsPowerOfTwoAndFits)
{
    MemoryModel mm(model::OpCounter(model::presets::minGptPipeline()),
                   hw::presets::v100Sxm3());
    const auto m = mapping::makeMapping(1, 4, 1, 1, 1, 1);
    const double ub = mm.largestFittingMicrobatch(m, 256.0);
    EXPECT_GT(ub, 0.0);
    EXPECT_TRUE(mm.fits(m, 256.0, ub));
    if (2.0 * ub <= 256.0) {
        EXPECT_FALSE(mm.fits(m, 256.0, 2.0 * ub));
    }
}

TEST(MemoryModelTest, MoEExpertsShardAcrossCluster)
{
    MemoryModel moe(model::OpCounter(model::presets::glamMoE()),
                    hw::presets::h100());
    const auto fp = moe.footprint(
        mapping::makeMapping(8, 1, 1, 1, 1, 384), 8192.0, 2.0);
    // With expert sharding the resident parameters are a small
    // fraction of the 1.2 T total.
    const double resident_params = fp.parameterBytes / 2.0; // fp16
    EXPECT_LT(resident_params,
              model::presets::glamMoE().parameterCount() / 100.0);
}

TEST(MemoryModelTest, RejectsBadArguments)
{
    const auto mm = makeModel();
    const auto m = mapping::makeMapping(1, 1, 1, 1, 1, 1);
    EXPECT_THROW(mm.footprint(m, 0.0, 1.0), UserError);
    EXPECT_THROW(mm.footprint(m, 8.0, 0.0), UserError);
    EXPECT_THROW(mm.footprint(m, 8.0, 16.0), UserError);
    MemoryOptions bad;
    bad.optimizerBytesPerParam = -1.0;
    EXPECT_THROW(makeModel(bad), UserError);
}

TEST(MemoryModelTest, ZeroStageNamesAndOverheads)
{
    EXPECT_EQ(zeroStageName(ZeroStage::none), "plain-DP");
    EXPECT_EQ(zeroStageName(ZeroStage::optimizer), "ZeRO-1");
    EXPECT_EQ(zeroStageName(ZeroStage::gradients), "ZeRO-2");
    EXPECT_EQ(zeroStageName(ZeroStage::parameters), "ZeRO-3");
    EXPECT_DOUBLE_EQ(zeroCommOverhead(ZeroStage::none), 0.0);
    EXPECT_DOUBLE_EQ(zeroCommOverhead(ZeroStage::gradients), 0.0);
    EXPECT_DOUBLE_EQ(zeroCommOverhead(ZeroStage::parameters), 0.5);
}

} // namespace
} // namespace core
} // namespace amped

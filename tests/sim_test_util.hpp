/**
 * @file
 * Shared helpers for the simulator test suites: a random layered-DAG
 * generator driven by common/rng.hpp (used by the property tests and
 * the seed-determinism tests) and its resource-free critical-path
 * bound.
 */

#ifndef AMPED_TESTS_SIM_TEST_UTIL_HPP
#define AMPED_TESTS_SIM_TEST_UTIL_HPP

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "sim/engine.hpp"
#include "sim/task_graph.hpp"

namespace amped {
namespace sim {
namespace testutil {

/**
 * Canonical string form of a run — every interval of every resource
 * at full precision — so two runs can be compared byte-for-byte.
 */
inline std::string
traceFingerprint(const SimResult &result)
{
    std::ostringstream oss;
    oss.precision(17);
    oss << result.makespan << '\n';
    for (std::size_t r = 0; r < result.resources.size(); ++r) {
        for (const auto &interval : result.resources[r].intervals) {
            oss << r << ' ' << interval.task << ' '
                << interval.start << ' ' << interval.end << '\n';
        }
    }
    return oss.str();
}

/** Canonical string form of a FailureOutcome (byte-comparable). */
inline std::string
failureFingerprint(const FailureOutcome &failure)
{
    std::ostringstream oss;
    oss.precision(17);
    oss << failure.failed << ' ' << failure.failuresApplied << ' '
        << failure.firstFailureTime << ' '
        << failure.firstFailedResource << ' '
        << failure.completedTasks << ' ' << failure.abortedTasks
        << ' ' << failure.unreachedTasks << ' '
        << failure.lostBusySeconds << ' '
        << failure.wastedWallSeconds << '\n';
    return oss.str();
}

/** A generated DAG plus the ground truth used by the assertions. */
struct RandomGraph
{
    TaskGraph graph;
    std::vector<double> durations;      ///< Per task.
    std::vector<double> latencies;      ///< Per task.
    std::vector<ResourceId> taskOwner;  ///< Resource per task.
    std::size_t numResources = 0;
};

/**
 * `prefix + std::to_string(i)` via appends.  operator+(const char*,
 * std::string&&) trips a GCC 12 -Wrestrict false positive once the
 * surrounding calls inline; plain appends don't.
 */
inline std::string
indexedName(const char *prefix, std::int64_t i)
{
    std::string name(prefix);
    name += std::to_string(i);
    return name;
}

/** Random layered DAG: edges only go to later tasks (acyclic). */
inline RandomGraph
makeRandomGraph(Rng &rng)
{
    RandomGraph out;
    const std::int64_t n_devices = rng.uniformInt(1, 4);
    const std::int64_t n_channels = rng.uniformInt(1, 3);
    std::vector<ResourceId> devices, channels;
    for (std::int64_t d = 0; d < n_devices; ++d)
        devices.push_back(
            out.graph.addDevice(indexedName("d", d)));
    for (std::int64_t c = 0; c < n_channels; ++c)
        channels.push_back(
            out.graph.addChannel(indexedName("c", c)));
    out.numResources =
        static_cast<std::size_t>(n_devices + n_channels);

    const std::int64_t n_tasks = rng.uniformInt(2, 40);
    for (std::int64_t t = 0; t < n_tasks; ++t) {
        if (rng.bernoulli(0.7)) {
            const double duration = rng.uniformReal(0.0, 2.0);
            const auto device = devices[static_cast<std::size_t>(
                rng.uniformInt(0, n_devices - 1))];
            out.graph.addCompute(device, Seconds{duration},
                                 indexedName("t", t));
            out.durations.push_back(duration);
            out.latencies.push_back(0.0);
            out.taskOwner.push_back(device);
        } else {
            const double bits = rng.uniformReal(0.0, 1e9);
            const double bw = rng.uniformReal(1e8, 1e10);
            const double latency = rng.uniformReal(0.0, 0.01);
            const auto channel = channels[static_cast<std::size_t>(
                rng.uniformInt(0, n_channels - 1))];
            out.graph.addTransfer(channel, Bits{bits}, BitsPerSecond{bw},
                                  Seconds{latency},
                                  indexedName("t", t));
            out.durations.push_back(bits / bw);
            out.latencies.push_back(latency);
            out.taskOwner.push_back(channel);
        }
        // Random backward edges (guaranteed acyclic).
        const std::int64_t max_edges = std::min<std::int64_t>(t, 3);
        for (std::int64_t e = 0; e < max_edges; ++e) {
            if (rng.bernoulli(0.4)) {
                const TaskId pred = static_cast<TaskId>(
                    rng.uniformInt(0, t - 1));
                out.graph.addDependency(
                    pred, static_cast<TaskId>(t));
            }
        }
    }
    return out;
}

/** Longest dependency path (durations + latencies), resource-free. */
inline double
criticalPath(const RandomGraph &rg)
{
    const std::size_t n = rg.graph.taskCount();
    std::vector<double> finish(n, -1.0);
    // Tasks are topologically ordered by construction (edges go from
    // lower to higher ids), so one forward pass suffices.
    std::vector<double> start(n, 0.0);
    for (std::size_t t = 0; t < n; ++t) {
        finish[t] = start[t] + rg.durations[t] + rg.latencies[t];
        for (TaskId succ :
             rg.graph.task(static_cast<TaskId>(t)).successors) {
            start[succ] = std::max(start[succ], finish[t]);
        }
    }
    return *std::max_element(finish.begin(), finish.end());
}

} // namespace testutil
} // namespace sim
} // namespace amped

#endif // AMPED_TESTS_SIM_TEST_UTIL_HPP

/**
 * @file
 * Tests for the Chrome trace-event exporter: document validity
 * (parse round-trip), monotonic timestamps, flow-event pairing, and
 * failure instants — the trace-side acceptance criteria of the
 * observability subsystem.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/json.hpp"
#include "sim/engine.hpp"
#include "sim/fault.hpp"
#include "sim/task_graph.hpp"

namespace amped {
namespace obs {
namespace {

/**
 * Two devices linked by one channel: fwd on gpu0, a transfer, then
 * bwd on gpu1.  The transfer edge is what produces the flow pair.
 */
sim::TaskGraph
makePipelineGraph()
{
    sim::TaskGraph graph;
    const auto d0 = graph.addDevice("gpu0");
    const auto d1 = graph.addDevice("gpu1");
    const auto ch = graph.addChannel("link01");
    const auto fwd = graph.addCompute(d0, Seconds{1.0}, "fwd", "forward");
    const auto xfer = graph.addTransfer(ch, Bits{8e9},
                                        BitsPerSecond{1e10},
                                        Seconds{1e-6},
                                        "act-xfer", "p2p");
    const auto bwd = graph.addCompute(d1, Seconds{2.0}, "bwd", "backward");
    graph.addDependency(fwd, xfer);
    graph.addDependency(xfer, bwd);
    return graph;
}

TEST(ChromeTraceTest, DocumentParsesAndRoundTrips)
{
    auto graph = makePipelineGraph();
    sim::Engine engine;
    const auto result = engine.run(graph);

    ChromeTraceBuilder builder;
    builder.addRun(graph, result, "pipe");
    EXPECT_GT(builder.eventCount(), 0u);

    const std::string text = builder.toJsonString();
    const Json doc = Json::parse(text);
    EXPECT_TRUE(doc.contains("traceEvents"));
    EXPECT_EQ(doc.at("displayTimeUnit").asString(), "ms");
    // Serialization is a fixpoint: parse(dump) == dump.
    EXPECT_EQ(doc.dump(2) + "\n", text);
}

TEST(ChromeTraceTest, TimestampsAreMonotonicAndScaledToMicros)
{
    auto graph = makePipelineGraph();
    sim::Engine engine;
    const auto result = engine.run(graph);

    ChromeTraceBuilder builder;
    builder.addRun(graph, result, "pipe");
    const Json doc = builder.build();
    double previous = -1.0;
    double max_end = 0.0;
    for (const Json &event : doc.at("traceEvents").items()) {
        if (!event.contains("ts"))
            continue; // metadata events carry no timestamp
        const double ts = event.at("ts").asDouble();
        EXPECT_GE(ts, previous);
        previous = ts;
        if (event.at("ph").asString() == "X")
            max_end = std::max(max_end,
                               ts + event.at("dur").asDouble());
    }
    // Simulator seconds are scaled by 1e6: the pipeline makespan in
    // microseconds bounds every slice end.
    EXPECT_NEAR(max_end, result.makespan * 1e6, 1e-6);
    EXPECT_GT(max_end, 2e6); // fwd (1 s) + bwd (2 s) at least
}

TEST(ChromeTraceTest, SliceEventsCarryLabelsAndCategories)
{
    auto graph = makePipelineGraph();
    sim::Engine engine;
    const auto result = engine.run(graph);

    ChromeTraceBuilder builder;
    builder.addRun(graph, result, "pipe");
    const Json doc = builder.build();
    bool saw_fwd = false;
    for (const Json &event : doc.at("traceEvents").items()) {
        if (event.at("ph").asString() != "X")
            continue;
        if (event.at("name").asString() == "fwd") {
            saw_fwd = true;
            EXPECT_EQ(event.at("cat").asString(), "forward");
            EXPECT_DOUBLE_EQ(event.at("dur").asDouble(), 1e6);
        }
    }
    EXPECT_TRUE(saw_fwd);
}

TEST(ChromeTraceTest, FlowEventsPairUpPerTransferEdge)
{
    auto graph = makePipelineGraph();
    sim::Engine engine;
    const auto result = engine.run(graph);

    ChromeTraceBuilder builder;
    builder.addRun(graph, result, "pipe");
    const Json doc = builder.build();
    std::vector<std::int64_t> starts;
    std::vector<std::int64_t> finishes;
    for (const Json &event : doc.at("traceEvents").items()) {
        const std::string ph = event.at("ph").asString();
        if (ph == "s")
            starts.push_back(event.at("id").asInt());
        else if (ph == "f")
            finishes.push_back(event.at("id").asInt());
    }
    // One transfer edge -> exactly one send/receive arrow, with the
    // same flow id on both halves.
    ASSERT_EQ(starts.size(), 1u);
    std::sort(starts.begin(), starts.end());
    std::sort(finishes.begin(), finishes.end());
    EXPECT_EQ(starts, finishes);
}

TEST(ChromeTraceTest, FailuresBecomeInstantEvents)
{
    auto graph = makePipelineGraph();
    sim::Engine engine;
    const auto result = engine.run(graph);

    ChromeTraceBuilder builder;
    builder.addRun(graph, result, "faulty",
                   {sim::FailureEvent{0, 0.5}});
    const Json doc = builder.build();
    std::size_t instants = 0;
    for (const Json &event : doc.at("traceEvents").items()) {
        if (event.at("ph").asString() != "i")
            continue;
        ++instants;
        EXPECT_DOUBLE_EQ(event.at("ts").asDouble(), 0.5e6);
    }
    EXPECT_EQ(instants, 1u);
}

TEST(ChromeTraceTest, RunsGetDistinctPids)
{
    auto graph = makePipelineGraph();
    sim::Engine engine;
    const auto result = engine.run(graph);

    ChromeTraceBuilder builder;
    builder.addRun(graph, result, "first");
    builder.addRun(graph, result, "second");
    const Json doc = builder.build();
    std::vector<std::int64_t> pids;
    for (const Json &event : doc.at("traceEvents").items())
        if (event.at("ph").asString() == "X")
            pids.push_back(event.at("pid").asInt());
    ASSERT_FALSE(pids.empty());
    std::sort(pids.begin(), pids.end());
    pids.erase(std::unique(pids.begin(), pids.end()), pids.end());
    EXPECT_EQ(pids.size(), 2u);
}

TEST(ChromeTraceTest, MismatchedResultAndGraphThrow)
{
    auto graph = makePipelineGraph();
    sim::Engine engine;
    const auto result = engine.run(graph);

    sim::TaskGraph other;
    other.addDevice("lonely");
    other.addCompute(0, Seconds{1.0}, "only");
    ChromeTraceBuilder builder;
    EXPECT_THROW(builder.addRun(other, result, "bad"), UserError);
}

} // namespace
} // namespace obs
} // namespace amped

/**
 * @file
 * Tests for the design-space exploration engine and the ablation
 * harness.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/log.hpp"
#include "explore/ablation.hpp"
#include "explore/explorer.hpp"
#include "hw/presets.hpp"
#include "model/presets.hpp"
#include "obs/metrics.hpp"

namespace amped {
namespace explore {
namespace {

net::SystemConfig
testSystem()
{
    net::SystemConfig sys;
    sys.name = "test-4x4";
    sys.numNodes = 4;
    sys.acceleratorsPerNode = 4;
    sys.intraLink =
        net::LinkConfig{"intra", Seconds{1e-6}, BitsPerSecond{2.4e12}};
    sys.interLink =
        net::LinkConfig{"inter", Seconds{2e-6}, BitsPerSecond{2e11}};
    sys.nicsPerNode = 4;
    return sys;
}

core::AmpedModel
testModel()
{
    return core::AmpedModel(model::presets::tinyTest(),
                            hw::presets::tinyTest(),
                            hw::MicrobatchEfficiency(0.8, 4.0),
                            testSystem());
}

core::TrainingJob
testJob()
{
    core::TrainingJob job;
    job.batchSize = 256.0;
    job.numBatchesOverride = 10.0;
    return job;
}

TEST(ExplorerTest, SweepAllEvaluatesEveryFeasibleMapping)
{
    Explorer explorer(testModel());
    const auto result = explorer.sweepAll({256.0}, testJob());
    // 4 = 2^2 -> 6 splits per tier, 36 total; PP capped at 4 layers
    // filters some; batch 256 is large enough for all.
    EXPECT_GT(result.entries.size(), 20u);
    EXPECT_EQ(result.skipped, 0u);
    for (const auto &entry : result.entries) {
        EXPECT_GT(entry.result.timePerBatch, 0.0);
        EXPECT_EQ(entry.batchSize, 256.0);
    }
}

TEST(ExplorerTest, InfeasiblePointsAreSkippedNotFatal)
{
    Explorer explorer(testModel());
    // Batch 4 is too small for mappings with DP * PP = 16.
    const auto result = explorer.sweepAll({4.0}, testJob());
    EXPECT_GT(result.skipped, 0u);
    EXPECT_GT(result.entries.size(), 0u);
}

TEST(ExplorerTest, BestPicksMinimumTime)
{
    Explorer explorer(testModel());
    auto result = explorer.sweepAll({256.0}, testJob());
    const auto best = Explorer::best(result);
    ASSERT_TRUE(best.has_value());
    for (const auto &entry : result.entries)
        EXPECT_LE(best->result.totalTime, entry.result.totalTime);
    EXPECT_FALSE(Explorer::best(SweepResult{}).has_value());
}

TEST(ExplorerTest, SortOrdersAscending)
{
    Explorer explorer(testModel());
    auto result = explorer.sweepAll({256.0}, testJob());
    Explorer::sortByTime(result.entries);
    for (std::size_t i = 1; i < result.entries.size(); ++i) {
        EXPECT_LE(result.entries[i - 1].result.totalTime,
                  result.entries[i].result.totalTime);
    }
}

TEST(ExplorerTest, MultipleBatchSizesCrossProduct)
{
    Explorer explorer(testModel());
    const std::vector<mapping::ParallelismConfig> mappings = {
        mapping::makeMapping(4, 1, 1, 1, 1, 4),
        mapping::makeMapping(1, 1, 4, 1, 1, 4),
    };
    const auto result =
        explorer.sweep(mappings, {64.0, 128.0, 256.0}, testJob());
    EXPECT_EQ(result.entries.size(), 6u);
}

TEST(ExplorerTest, BrokenPointIsNanPinnedNotFatal)
{
    // A sweep grid with an intentionally broken point (an infinite
    // batch-count override passes job validation but yields an
    // infinite total time) must complete, NaN-pin that point, warn
    // once, and return every other point untouched.
    Explorer explorer(testModel());
    const std::vector<mapping::ParallelismConfig> mappings = {
        mapping::makeMapping(4, 1, 1, 1, 1, 4),
    };
    std::vector<core::TrainingJob> jobs;
    jobs.push_back(testJob());
    core::TrainingJob poison = testJob();
    poison.numBatchesOverride =
        std::numeric_limits<double>::infinity();
    jobs.push_back(poison);

    testing::internal::CaptureStderr();
    const auto result = explorer.sweepJobs(mappings, jobs);
    const std::string stderr_text =
        testing::internal::GetCapturedStderr();

    EXPECT_EQ(result.failed, 1u);
    EXPECT_EQ(result.skipped, 0u);
    ASSERT_EQ(result.entries.size(), 2u);
    EXPECT_TRUE(std::isfinite(result.entries[0].result.totalTime));
    EXPECT_GT(result.entries[0].result.totalTime, 0.0);
    EXPECT_TRUE(std::isnan(result.entries[1].result.totalTime));
    EXPECT_TRUE(std::isnan(result.entries[1].result.timePerBatch));

    // Exactly one warning, naming the failure mode.
    EXPECT_NE(stderr_text.find("warn"), std::string::npos)
        << stderr_text;
    EXPECT_NE(stderr_text.find("non-finite total time"),
              std::string::npos)
        << stderr_text;
    EXPECT_EQ(std::count(stderr_text.begin(), stderr_text.end(),
                         '\n'),
              1)
        << stderr_text;
}

TEST(ExplorerTest, NanPinnedEntriesRankLastAndNeverWinBest)
{
    Explorer explorer(testModel());
    const std::vector<mapping::ParallelismConfig> mappings = {
        mapping::makeMapping(4, 1, 1, 1, 1, 4),
        mapping::makeMapping(1, 1, 4, 1, 1, 4),
    };
    core::TrainingJob poison = testJob();
    poison.numBatchesOverride =
        std::numeric_limits<double>::infinity();
    log::Silencer quiet;
    auto result = explorer.sweepJobs(mappings, {testJob(), poison});
    EXPECT_EQ(result.failed, 2u);
    ASSERT_EQ(result.entries.size(), 4u);

    const auto best = Explorer::best(result);
    ASSERT_TRUE(best.has_value());
    EXPECT_TRUE(std::isfinite(best->result.totalTime));

    Explorer::sortByTime(result.entries);
    EXPECT_TRUE(std::isfinite(result.entries.front().result.totalTime));
    EXPECT_TRUE(std::isnan(result.entries[2].result.totalTime));
    EXPECT_TRUE(std::isnan(result.entries[3].result.totalTime));
}

TEST(ExplorerTest, TablesContainMappingsAndPhases)
{
    Explorer explorer(testModel());
    auto result = explorer.sweepAll({256.0}, testJob());
    Explorer::sortByTime(result.entries);
    const std::string table = sweepTable(result.entries);
    EXPECT_NE(table.find("mapping"), std::string::npos);
    EXPECT_NE(table.find("TFLOP/s/GPU"), std::string::npos);

    const std::string breakdown =
        breakdownTable(result.entries.front().result);
    EXPECT_NE(breakdown.find("compute-forward"), std::string::npos);
    EXPECT_NE(breakdown.find("pipeline-bubble"), std::string::npos);
    EXPECT_NE(breakdown.find("100.00 %"), std::string::npos);
}

TEST(ExplorerTest, SweepCsvIsMachineReadable)
{
    Explorer explorer(testModel());
    auto result = explorer.sweepAll({256.0}, testJob());
    Explorer::sortByTime(result.entries);
    result.entries.resize(2);
    const std::string csv = sweepCsv(result.entries);
    // Header + 2 data rows.
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
    EXPECT_NE(csv.find("mapping,tp,pp,dp,batch,microbatch"),
              std::string::npos);
    EXPECT_NE(csv.find("pipeline_bubble_seconds"),
              std::string::npos);
    // Mapping strings contain no comma, so no quoting is needed,
    // and every row has the same column count as the header.
    const auto columns = [](const std::string &line) {
        return std::count(line.begin(), line.end(), ',');
    };
    std::istringstream lines(csv);
    std::string header, row;
    std::getline(lines, header);
    while (std::getline(lines, row))
        EXPECT_EQ(columns(row), columns(header));
}

TEST(ExplorerTest, MemoryScreeningDropsOversizedPoints)
{
    // A 175B model on a tiny 16-accelerator system: almost nothing
    // fits in 80 GB per device.
    net::SystemConfig sys = testSystem();
    core::AmpedModel amped(model::presets::gpt3_175B(),
                           hw::presets::a100(),
                           hw::MicrobatchEfficiency(0.8, 4.0), sys);
    Explorer explorer(amped);
    core::TrainingJob job;
    job.batchSize = 64.0;
    job.numBatchesOverride = 1.0;

    const auto unscreened = explorer.sweepAll({64.0}, job);
    explorer.setMemoryModel(core::MemoryModel(
        model::OpCounter(model::presets::gpt3_175B()),
        hw::presets::a100()));
    const auto screened = explorer.sweepAll({64.0}, job);

    EXPECT_EQ(unscreened.memorySkipped, 0u);
    EXPECT_GT(screened.memorySkipped, 0u);
    EXPECT_LT(screened.entries.size(), unscreened.entries.size());
    // Every surviving point actually fits.
    core::MemoryModel checker(
        model::OpCounter(model::presets::gpt3_175B()),
        hw::presets::a100());
    for (const auto &entry : screened.entries) {
        EXPECT_TRUE(checker.fits(entry.mapping, entry.batchSize,
                                 entry.result.microbatchSize));
    }

    explorer.clearMemoryModel();
    const auto cleared = explorer.sweepAll({64.0}, job);
    EXPECT_EQ(cleared.memorySkipped, 0u);
}

TEST(ExplorerTest, ParallelSweepMatchesSerialExactly)
{
    // A memory-screened minGPT grid on the tiny system exercises
    // all three point outcomes (feasible, infeasible, over-memory):
    // without activation recomputation the low-parallelism points
    // blow the 4 GB device, batch 4 starves the DP*PP = 16 points.
    core::AmpedModel amped(model::presets::minGpt85M(),
                           hw::presets::tinyTest(),
                           hw::MicrobatchEfficiency(0.8, 4.0),
                           testSystem());
    core::MemoryOptions screen_options;
    screen_options.activationRecompute = false;
    const core::MemoryModel screen(
        model::OpCounter(model::presets::minGpt85M()),
        hw::presets::tinyTest(), screen_options);
    core::TrainingJob job;
    job.batchSize = 64.0;
    job.numBatchesOverride = 1.0;
    const std::vector<double> batches = {4.0, 64.0, 256.0};

    Explorer serial(amped);
    serial.setThreads(1);
    serial.setMemoryModel(screen);
    Explorer parallel(amped);
    parallel.setThreads(4);
    parallel.setMemoryModel(screen);

    const auto a = serial.sweepAll(batches, job);
    const auto b = parallel.sweepAll(batches, job);

    EXPECT_GT(a.skipped, 0u);
    EXPECT_GT(a.memorySkipped, 0u);
    EXPECT_EQ(a.skipped, b.skipped);
    EXPECT_EQ(a.memorySkipped, b.memorySkipped);
    ASSERT_EQ(a.entries.size(), b.entries.size());
    ASSERT_GT(a.entries.size(), 0u);
    for (std::size_t i = 0; i < a.entries.size(); ++i) {
        EXPECT_EQ(a.entries[i].mapping.toString(),
                  b.entries[i].mapping.toString());
        EXPECT_EQ(a.entries[i].batchSize, b.entries[i].batchSize);
        EXPECT_EQ(a.entries[i].result.totalTime,
                  b.entries[i].result.totalTime);
        EXPECT_EQ(a.entries[i].result.timePerBatch,
                  b.entries[i].result.timePerBatch);
    }
    // The rendered artifacts are byte-identical.
    EXPECT_EQ(sweepTable(a.entries), sweepTable(b.entries));
    EXPECT_EQ(sweepCsv(a.entries), sweepCsv(b.entries));
}

TEST(ExplorerTest, SweepJobsCrossesMappingsWithJobVariants)
{
    Explorer explorer(testModel());
    const std::vector<mapping::ParallelismConfig> mappings = {
        mapping::makeMapping(1, 1, 4, 1, 1, 4), // DP 16
        mapping::makeMapping(4, 1, 1, 1, 1, 4), // TP 4 x DP 4
    };
    std::vector<core::TrainingJob> jobs;
    for (double ub : {8.0, 32.0}) {
        core::TrainingJob job = testJob(); // batch 256
        job.microbatching.microbatchSizeOverride = ub;
        jobs.push_back(job);
    }
    const auto result = explorer.sweepJobs(mappings, jobs);
    // DP 16 leaves a per-replica batch of 16: ub = 32 does not fit
    // (half a microbatch), every other point does.
    EXPECT_EQ(result.skipped, 1u);
    ASSERT_EQ(result.entries.size(), 3u);
    // Grid order is mapping-major with job order preserved.
    EXPECT_EQ(result.entries[0].result.microbatchSize, 8.0);
    EXPECT_EQ(result.entries[1].result.microbatchSize, 8.0);
    EXPECT_EQ(result.entries[2].result.microbatchSize, 32.0);
}

TEST(ExplorerTest, SweepAllMemoizesIdenticalConfigurations)
{
    auto &metrics = obs::MetricsRegistry::global();
    obs::Counter &hits =
        metrics.counter("explore.sweep_cache.hits");
    obs::Counter &misses =
        metrics.counter("explore.sweep_cache.misses");

    // A batch size no other test uses, so the first call is
    // guaranteed to miss the process-wide cache.
    core::TrainingJob job = testJob();
    job.batchSize = 192.0;
    const std::uint64_t hits_before = hits.value();
    const std::uint64_t misses_before = misses.value();

    Explorer first(testModel());
    const auto a = first.sweepAll({192.0}, job);
    EXPECT_EQ(misses.value(), misses_before + 1);
    EXPECT_EQ(hits.value(), hits_before);

    // A *different* Explorer instance with the same configuration
    // hits: the cache keys the full configuration, not the object.
    Explorer second(testModel());
    const auto b = second.sweepAll({192.0}, job);
    EXPECT_EQ(hits.value(), hits_before + 1);
    EXPECT_EQ(misses.value(), misses_before + 1);
    ASSERT_EQ(b.entries.size(), a.entries.size());
    for (std::size_t i = 0; i < a.entries.size(); ++i) {
        EXPECT_EQ(a.entries[i].mapping.toString(),
                  b.entries[i].mapping.toString());
        EXPECT_EQ(a.entries[i].result.timePerBatch,
                  b.entries[i].result.timePerBatch);
    }

    // Changing any keyed input (here the job batch) misses again.
    core::TrainingJob other = job;
    other.batchSize = 208.0;
    second.sweepAll({208.0}, other);
    EXPECT_EQ(misses.value(), misses_before + 2);

    // A different thread count is keyed too, so serial-vs-parallel
    // differential runs never alias each other's cached results.
    Explorer threaded(testModel());
    threaded.setThreads(3);
    threaded.sweepAll({192.0}, job);
    EXPECT_EQ(misses.value(), misses_before + 3);
    EXPECT_EQ(hits.value(), hits_before + 1);
}

TEST(ExplorerTest, SweepCsvWithNoEntriesStillHasPhaseHeaders)
{
    const std::string csv = sweepCsv({});
    EXPECT_NE(csv.find("mapping,tp,pp,dp,batch,microbatch"),
              std::string::npos);
    EXPECT_NE(csv.find("pipeline_bubble_seconds"),
              std::string::npos);
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 1);
}

TEST(AblationTest, BubbleOverlapSweepIsMonotonic)
{
    AblationRunner runner(model::presets::tinyTest(),
                          hw::presets::tinyTest(),
                          hw::MicrobatchEfficiency(0.8, 4.0),
                          testSystem());
    const auto m = mapping::makeMapping(1, 4, 1, 1, 2, 2); // PP = 8
    const auto points =
        runner.sweepBubbleOverlap({0.0, 0.5, 1.0}, m, testJob());
    ASSERT_EQ(points.size(), 3u);
    EXPECT_DOUBLE_EQ(points[0].result.perBatch.bubble, 0.0);
    EXPECT_LT(points[1].result.perBatch.bubble,
              points[2].result.perBatch.bubble);
    EXPECT_EQ(points[1].label, "R=0.50");
}

TEST(AblationTest, ZeroOverheadSweepGrowsComm)
{
    AblationRunner runner(model::presets::tinyTest(),
                          hw::presets::tinyTest(),
                          hw::MicrobatchEfficiency(0.8, 4.0),
                          testSystem());
    const auto m = mapping::makeMapping(4, 1, 1, 1, 1, 4);
    const auto points =
        runner.sweepZeroOverhead({0.0, 1.0}, m, testJob());
    EXPECT_LT(points[0].result.perBatch.communication(),
              points[1].result.perBatch.communication());
}

TEST(AblationTest, GradAllReduceComparisonHasTwoPoints)
{
    AblationRunner runner(model::presets::tinyTest(),
                          hw::presets::tinyTest(),
                          hw::MicrobatchEfficiency(0.8, 4.0),
                          testSystem());
    const auto m = mapping::makeMapping(1, 1, 4, 1, 1, 4);
    const auto points = runner.compareGradAllReduce(m, testJob());
    ASSERT_EQ(points.size(), 2u);
    EXPECT_EQ(points[0].label, "hierarchical-allreduce");
    // Flat all-reduce over the slow inter tier is slower.
    EXPECT_LT(points[0].result.timePerBatch,
              points[1].result.timePerBatch);
}

TEST(AblationTest, EfficiencyFloorChangesSmallMicrobatchPoints)
{
    AblationRunner runner(model::presets::tinyTest(),
                          hw::presets::tinyTest(),
                          hw::MicrobatchEfficiency(0.8, 64.0),
                          testSystem());
    // DP*PP = 16 with batch 64 -> ub = 4: raw eff ~ 0.047.
    const auto m = mapping::makeMapping(1, 1, 4, 1, 1, 4);
    core::TrainingJob job = testJob();
    job.batchSize = 64.0;
    const auto points =
        runner.sweepEfficiencyFloor({0.0, 0.25}, m, job);
    ASSERT_EQ(points.size(), 2u);
    // A floor of 25 % speeds up the floored configuration.
    EXPECT_GT(points[0].result.timePerBatch,
              points[1].result.timePerBatch);
}

} // namespace
} // namespace explore
} // namespace amped

/**
 * @file
 * Tests for the text-table and CSV writers.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "common/table.hpp"

namespace amped {
namespace {

TEST(TextTableTest, RejectsEmptyHeadersAndRaggedRows)
{
    EXPECT_THROW(TextTable({}), UserError);
    TextTable table({"a", "b"});
    EXPECT_THROW(table.addRow({"only-one"}), UserError);
    EXPECT_THROW(table.addRow({"1", "2", "3"}), UserError);
}

TEST(TextTableTest, AlignsColumns)
{
    TextTable table({"name", "value"});
    table.addRow({"x", "1"});
    table.addRow({"longer-name", "22"});
    std::ostringstream oss;
    table.print(oss);
    const std::string out = oss.str();
    EXPECT_NE(out.find("name         value"), std::string::npos);
    EXPECT_NE(out.find("longer-name  22"), std::string::npos);
    EXPECT_NE(out.find("-----"), std::string::npos);
    EXPECT_EQ(table.rowCount(), 2u);
}

TEST(TextTableTest, CsvOutputHasHeaderAndRows)
{
    TextTable table({"a", "b"});
    table.addRow({"1", "2"});
    std::ostringstream oss;
    table.printCsv(oss);
    EXPECT_EQ(oss.str(), "a,b\n1,2\n");
}

TEST(CsvEscapeTest, QuotesOnlyWhenNeeded)
{
    EXPECT_EQ(csvEscape("plain"), "plain");
    EXPECT_EQ(csvEscape("has,comma"), "\"has,comma\"");
    EXPECT_EQ(csvEscape("has\"quote"), "\"has\"\"quote\"");
    EXPECT_EQ(csvEscape("has\nnewline"), "\"has\nnewline\"");
}

TEST(TextTableTest, CsvEscapesCells)
{
    TextTable table({"k"});
    table.addRow({"v,w"});
    std::ostringstream oss;
    table.printCsv(oss);
    EXPECT_EQ(oss.str(), "k\n\"v,w\"\n");
}

} // namespace
} // namespace amped

/**
 * @file
 * Tests for the bounded admission queue (common/work_queue.hpp):
 * overload policies at capacity, queued-deadline expiry, the
 * transient/permanent failure taxonomy with retry-and-backoff, and
 * the `common.queue.*` metrics.  Every test drives the queue with an
 * injected ManualClock, so backoff and expiry are exact — no
 * sleeping, no wall-clock flakiness.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/cancel.hpp"
#include "common/work_queue.hpp"
#include "obs/metrics.hpp"

namespace amped {
namespace {

WorkQueueOptions
manualOptions(const ManualClock &clock,
              obs::MetricsRegistry &registry)
{
    WorkQueueOptions options;
    options.clock = &clock;
    options.registry = &registry;
    return options;
}

TEST(WorkQueueTest, DrainRunsItemsInAdmissionOrder)
{
    ManualClock clock(0.0);
    obs::MetricsRegistry registry;
    WorkQueue queue(manualOptions(clock, registry));

    std::vector<int> ran;
    const auto a = queue.submit([&] { ran.push_back(1); });
    const auto b = queue.submit([&] { ran.push_back(2); });
    const auto c = queue.submit([&] { ran.push_back(3); });
    ASSERT_TRUE(a.accepted && b.accepted && c.accepted);
    EXPECT_EQ(queue.depth(), 3u);

    const auto results = queue.drainReady();
    ASSERT_EQ(results.size(), 3u);
    EXPECT_EQ(ran, (std::vector<int>{1, 2, 3}));
    for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(results[i].outcome, ItemOutcome::completed);
        EXPECT_EQ(results[i].attempts, 1u);
    }
    EXPECT_EQ(results[0].id, a.id);
    EXPECT_EQ(results[2].id, c.id);
    EXPECT_EQ(queue.depth(), 0u);
    EXPECT_EQ(queue.nextReadySeconds(),
              std::numeric_limits<double>::infinity());
    EXPECT_EQ(registry.counter("common.queue.completed").value(), 3u);
}

TEST(WorkQueueTest, RejectNewestRefusesAtCapacity)
{
    ManualClock clock(0.0);
    obs::MetricsRegistry registry;
    WorkQueueOptions options = manualOptions(clock, registry);
    options.capacity = 2;
    options.policy = OverloadPolicy::rejectNewest;
    WorkQueue queue(options);

    bool third_ran = false;
    ASSERT_TRUE(queue.submit([] {}).accepted);
    ASSERT_TRUE(queue.submit([] {}).accepted);
    const auto third = queue.submit([&] { third_ran = true; });
    EXPECT_FALSE(third.accepted);
    EXPECT_FALSE(third.shedItem.has_value());
    EXPECT_EQ(queue.depth(), 2u);

    EXPECT_EQ(queue.drainReady().size(), 2u);
    EXPECT_FALSE(third_ran);
    EXPECT_EQ(registry.counter("common.queue.rejected").value(), 1u);
    // `submitted` counts admissions; the rejected item never entered.
    EXPECT_EQ(registry.counter("common.queue.submitted").value(), 2u);
}

TEST(WorkQueueTest, ShedOldestDropsHeadAndReportsIt)
{
    ManualClock clock(0.0);
    obs::MetricsRegistry registry;
    WorkQueueOptions options = manualOptions(clock, registry);
    options.capacity = 2;
    options.policy = OverloadPolicy::shedOldest;
    WorkQueue queue(options);

    bool oldest_ran = false;
    std::vector<int> ran;
    const auto oldest = queue.submit([&] { oldest_ran = true; });
    ASSERT_TRUE(queue.submit([&] { ran.push_back(2); }).accepted);
    const auto newest = queue.submit([&] { ran.push_back(3); });

    ASSERT_TRUE(newest.accepted);
    ASSERT_TRUE(newest.shedItem.has_value());
    EXPECT_EQ(newest.shedItem->id, oldest.id);
    EXPECT_EQ(newest.shedItem->outcome, ItemOutcome::shed);
    EXPECT_EQ(newest.shedItem->attempts, 0u);
    EXPECT_EQ(queue.depth(), 2u);

    EXPECT_EQ(queue.drainReady().size(), 2u);
    EXPECT_FALSE(oldest_ran);
    EXPECT_EQ(ran, (std::vector<int>{2, 3}));
    EXPECT_EQ(registry.counter("common.queue.shed").value(), 1u);
}

TEST(WorkQueueTest, QueuedDeadlineExpiresWithoutRunning)
{
    ManualClock clock(0.0);
    obs::MetricsRegistry registry;
    WorkQueue queue(manualOptions(clock, registry));

    bool ran = false;
    const auto admission = queue.submit(
        [&] { ran = true; }, Deadline::after(1.0, clock));
    ASSERT_TRUE(admission.accepted);

    clock.advance(2.0); // Past the item's deadline while queued.
    const auto results = queue.drainReady();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].outcome, ItemOutcome::expired);
    EXPECT_EQ(results[0].attempts, 0u);
    EXPECT_FALSE(ran);
    EXPECT_EQ(queue.depth(), 0u);
    EXPECT_EQ(registry.counter("common.queue.expired").value(), 1u);
}

TEST(WorkQueueTest, TransientFailureRetriesWithBackoffThenCompletes)
{
    ManualClock clock(0.0);
    obs::MetricsRegistry registry;
    WorkQueue queue(manualOptions(clock, registry));
    const auto &opts = queue.options();

    unsigned attempts = 0;
    queue.submit([&] {
        if (++attempts < 3)
            throw TransientError("downstream busy");
    });

    // Attempt 1 fails; the item stays queued behind a backoff gate
    // of initialBackoffSeconds scaled by jitter in [0.5, 1).
    EXPECT_TRUE(queue.drainReady().empty());
    EXPECT_EQ(queue.depth(), 1u);
    const double first_gate = queue.nextReadySeconds();
    EXPECT_GE(first_gate, 0.5 * opts.initialBackoffSeconds);
    EXPECT_LT(first_gate, opts.initialBackoffSeconds);

    // Not ready yet: draining before the gate runs nothing.
    EXPECT_TRUE(queue.drainReady().empty());
    EXPECT_EQ(attempts, 1u);

    // Attempt 2 fails; the gate doubles (base 2 * initial).
    clock.set(first_gate);
    EXPECT_TRUE(queue.drainReady().empty());
    EXPECT_EQ(attempts, 2u);
    const double second_gate = queue.nextReadySeconds();
    EXPECT_GE(second_gate - first_gate,
              0.5 * 2.0 * opts.initialBackoffSeconds);
    EXPECT_LT(second_gate - first_gate,
              2.0 * opts.initialBackoffSeconds);

    // Attempt 3 succeeds.
    clock.set(second_gate);
    const auto results = queue.drainReady();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].outcome, ItemOutcome::completed);
    EXPECT_EQ(results[0].attempts, 3u);
    EXPECT_EQ(registry.counter("common.queue.retries").value(), 2u);
    EXPECT_EQ(registry.counter("common.queue.completed").value(), 1u);
}

TEST(WorkQueueTest, ExhaustedAttemptsFinishAsFailed)
{
    ManualClock clock(0.0);
    obs::MetricsRegistry registry;
    WorkQueueOptions options = manualOptions(clock, registry);
    options.maxAttempts = 2;
    WorkQueue queue(options);

    queue.submit([] { throw TransientError("still busy"); });
    EXPECT_TRUE(queue.drainReady().empty()); // Attempt 1, backing off.
    clock.set(queue.nextReadySeconds());
    const auto results = queue.drainReady(); // Attempt 2, exhausted.
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].outcome, ItemOutcome::failed);
    EXPECT_EQ(results[0].attempts, 2u);
    EXPECT_NE(results[0].error.find("still busy"), std::string::npos);
    EXPECT_EQ(registry.counter("common.queue.retries").value(), 1u);
    EXPECT_EQ(registry.counter("common.queue.failed").value(), 1u);
}

TEST(WorkQueueTest, PermanentFailureNeverRetries)
{
    ManualClock clock(0.0);
    obs::MetricsRegistry registry;
    WorkQueue queue(manualOptions(clock, registry));

    unsigned attempts = 0;
    queue.submit([&] {
        ++attempts;
        throw std::runtime_error("bad request");
    });
    const auto results = queue.drainReady();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].outcome, ItemOutcome::failed);
    EXPECT_EQ(results[0].attempts, 1u);
    EXPECT_EQ(attempts, 1u);
    EXPECT_NE(results[0].error.find("bad request"),
              std::string::npos);
    EXPECT_EQ(registry.counter("common.queue.retries").value(), 0u);
}

TEST(WorkQueueTest, BackoffJitterIsDeterministicPerSeed)
{
    const auto first_gate_for_seed = [](std::uint64_t seed,
                                        const ManualClock &clock,
                                        obs::MetricsRegistry &reg) {
        WorkQueueOptions options;
        options.clock = &clock;
        options.registry = &reg;
        options.jitterSeed = seed;
        WorkQueue queue(options);
        queue.submit([] { throw TransientError("again"); });
        queue.drainReady();
        return queue.nextReadySeconds();
    };

    ManualClock clock(0.0);
    obs::MetricsRegistry registry;
    const double gate_a = first_gate_for_seed(7, clock, registry);
    const double gate_b = first_gate_for_seed(7, clock, registry);
    EXPECT_EQ(gate_a, gate_b); // Same seed, same schedule — exactly.
}

TEST(WorkQueueTest, RegisterWorkQueueMetricsCreatesAllZeros)
{
    obs::MetricsRegistry registry;
    registerWorkQueueMetrics(registry);
    const auto snaps = registry.snapshot();
    ASSERT_EQ(snaps.size(), 8u);
    for (const auto &snap : snaps) {
        EXPECT_EQ(snap.name.rfind("common.queue.", 0), 0u)
            << snap.name;
        EXPECT_EQ(snap.count, 0u) << snap.name;
        EXPECT_EQ(snap.value, 0.0) << snap.name;
    }
}

TEST(WorkQueueTest, DepthGaugeTracksQueueAndDrain)
{
    ManualClock clock(0.0);
    obs::MetricsRegistry registry;
    WorkQueue queue(manualOptions(clock, registry));
    auto &depth = registry.gauge("common.queue.depth");

    queue.submit([] {});
    queue.submit([] {});
    EXPECT_EQ(depth.value(), 2.0);
    queue.drainReady();
    EXPECT_EQ(depth.value(), 0.0);
}

} // namespace
} // namespace amped

/**
 * @file
 * Concurrency stress tests for the shared-state surfaces that the
 * ThreadSanitizer CI job watches: the process-wide sweepAll
 * memoization cache, the metrics registry, and concurrent thread
 * pools sharing the global instrumentation counters.
 *
 * These tests pass trivially under a data-race-free implementation;
 * their value is the *interleavings* they force when the suite runs
 * under TSan (ci.yml `tsan` job, AMPED_THREADS=4): cache fill races
 * between identical keys, snapshot-during-write on the registry, and
 * counter updates from pools owned by different host threads.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"
#include "explore/explorer.hpp"
#include "hw/presets.hpp"
#include "model/presets.hpp"
#include "obs/metrics.hpp"

namespace amped {
namespace {

net::SystemConfig
stressSystem()
{
    net::SystemConfig sys;
    sys.name = "stress-4x4";
    sys.numNodes = 4;
    sys.acceleratorsPerNode = 4;
    sys.intraLink =
        net::LinkConfig{"intra", Seconds{1e-6}, BitsPerSecond{2.4e12}};
    sys.interLink =
        net::LinkConfig{"inter", Seconds{2e-6}, BitsPerSecond{2e11}};
    sys.nicsPerNode = 4;
    return sys;
}

core::AmpedModel
stressModel()
{
    return core::AmpedModel(model::presets::tinyTest(),
                            hw::presets::tinyTest(),
                            hw::MicrobatchEfficiency(0.8, 4.0),
                            stressSystem());
}

core::TrainingJob
stressJob()
{
    core::TrainingJob job;
    job.batchSize = 256.0;
    job.numBatchesOverride = 10.0;
    return job;
}

/**
 * Several host threads issue the *same* sweepAll key at once.  The
 * first round races the cache-fill path (miss -> evaluate -> insert
 * under the same key from every thread); later rounds race lookups
 * against the insert.  Every caller must observe an identical grid.
 */
TEST(ConcurrencyStressTest, ConcurrentSweepAllSameKeyAgree)
{
    constexpr int kCallers = 4;
    // A batch size no other test uses, so round one really does
    // start from a cold cache entry and races the fill.
    const std::vector<double> batches{208.0};

    std::vector<explore::SweepResult> results(kCallers);
    std::vector<std::thread> callers;
    callers.reserve(kCallers);
    for (int t = 0; t < kCallers; ++t) {
        callers.emplace_back([&, t] {
            explore::Explorer explorer(stressModel());
            explorer.setThreads(2);
            results[static_cast<std::size_t>(t)] =
                explorer.sweepAll(batches, stressJob());
        });
    }
    for (auto &caller : callers)
        caller.join();

    const auto &first = results.front();
    ASSERT_GT(first.entries.size(), 0u);
    for (const auto &result : results) {
        ASSERT_EQ(result.entries.size(), first.entries.size());
        EXPECT_EQ(result.skipped, first.skipped);
        for (std::size_t i = 0; i < first.entries.size(); ++i) {
            // Bitwise equality: cached and freshly evaluated grids
            // must be indistinguishable.
            EXPECT_EQ(result.entries[i].result.totalTime,
                      first.entries[i].result.totalTime);
            EXPECT_EQ(result.entries[i].batchSize,
                      first.entries[i].batchSize);
        }
    }
}

/**
 * Distinct keys from concurrent callers: races insertions against
 * each other (rehash during lookup is the classic unordered_map
 * race) and, with enough keys, the capacity-eviction path.
 */
TEST(ConcurrencyStressTest, ConcurrentSweepAllDistinctKeys)
{
    constexpr int kCallers = 4;
    std::vector<explore::SweepResult> results(kCallers);
    std::vector<std::thread> callers;
    callers.reserve(kCallers);
    for (int t = 0; t < kCallers; ++t) {
        callers.emplace_back([&, t] {
            explore::Explorer explorer(stressModel());
            explorer.setThreads(2);
            // Unique batch size per caller -> unique cache key.
            const std::vector<double> batches{212.0 + 4.0 * t};
            results[static_cast<std::size_t>(t)] =
                explorer.sweepAll(batches, stressJob());
        });
    }
    for (auto &caller : callers)
        caller.join();

    for (int t = 0; t < kCallers; ++t) {
        const auto &result = results[static_cast<std::size_t>(t)];
        ASSERT_GT(result.entries.size(), 0u);
        for (const auto &entry : result.entries)
            EXPECT_EQ(entry.batchSize, 212.0 + 4.0 * t);
    }
}

/**
 * Readers snapshot and render the registry while writers are
 * mid-update.  TSan flags any unguarded read of counter/gauge/
 * histogram state; the final totals check that no update was lost.
 */
TEST(ConcurrencyStressTest, SnapshotDuringConcurrentWrites)
{
    obs::MetricsRegistry registry;
    obs::Counter &counter = registry.counter("stress.items");
    obs::Gauge &gauge = registry.gauge("stress.level");
    obs::Histogram &histogram = registry.histogram("stress.seconds", true);

    constexpr int kWriters = 3;
    constexpr int kOpsPerWriter = 20000;
    std::atomic<bool> stop{false};

    std::thread reader([&] {
        while (!stop.load(std::memory_order_acquire)) {
            const auto snap = registry.snapshot();
            EXPECT_GE(snap.size(), 3u);
            const std::string text =
                registry.renderText(obs::RenderMode::deterministic);
            EXPECT_NE(text.find("stress.items"), std::string::npos);
        }
    });

    std::vector<std::thread> writers;
    writers.reserve(kWriters);
    for (int w = 0; w < kWriters; ++w) {
        writers.emplace_back([&, w] {
            for (int i = 0; i < kOpsPerWriter; ++i) {
                counter.add(1);
                gauge.set(static_cast<double>(w));
                histogram.observe(1e-6 * (i + 1));
            }
        });
    }
    for (auto &writer : writers)
        writer.join();
    stop.store(true, std::memory_order_release);
    reader.join();

    const auto snap = registry.snapshot();
    for (const auto &metric : snap) {
        if (metric.name == "stress.items") {
            EXPECT_EQ(metric.count, static_cast<std::uint64_t>(
                                        kWriters * kOpsPerWriter));
        }
        if (metric.name == "stress.seconds") {
            EXPECT_EQ(metric.count, static_cast<std::uint64_t>(
                                        kWriters * kOpsPerWriter));
        }
    }
}

/**
 * Pins the Histogram count/sum coherence contract: observe()
 * publishes the bucket and sum updates before the count (release),
 * and count() is an acquire load, so a reader that loads count()
 * *first* must see a sum and bucket total covering at least that
 * many observations.  Every observation here is exactly 1.0, which
 * turns the contract into two integer inequalities a racing reader
 * can check exactly: sum >= count and bucket-total >= count.  Before
 * the ordering fix, count ran ahead of sum and this test's reader
 * loop failed within a few thousand iterations.
 */
TEST(ConcurrencyStressTest, HistogramCountNeverAheadOfSum)
{
    obs::Histogram histogram;

    constexpr int kWriters = 4;
    constexpr int kOpsPerWriter = 50000;
    std::atomic<bool> stop{false};

    std::thread reader([&] {
        while (!stop.load(std::memory_order_acquire)) {
            // Order matters: count first (acquire), then sum and
            // buckets — the invariant is only one-directional.
            const std::uint64_t count = histogram.count();
            const double sum = histogram.sum();
            std::uint64_t in_buckets = 0;
            for (int i = 0; i <= obs::Histogram::kNumBounds; ++i)
                in_buckets += histogram.bucketCount(i);
            EXPECT_GE(sum, static_cast<double>(count));
            EXPECT_GE(in_buckets, count);
        }
    });

    std::vector<std::thread> writers;
    writers.reserve(kWriters);
    for (int w = 0; w < kWriters; ++w) {
        writers.emplace_back([&] {
            for (int i = 0; i < kOpsPerWriter; ++i)
                histogram.observe(1.0);
        });
    }
    for (auto &writer : writers)
        writer.join();
    stop.store(true, std::memory_order_release);
    reader.join();

    EXPECT_EQ(histogram.count(), static_cast<std::uint64_t>(
                                     kWriters * kOpsPerWriter));
    EXPECT_DOUBLE_EQ(histogram.sum(),
                     static_cast<double>(kWriters * kOpsPerWriter));
}

/**
 * Each host thread owns its own pool (the Explorer-under-concurrent-
 * callers shape).  The per-index writes are private, but all pools
 * bump the same global instrumentation counters, which is exactly
 * the cross-pool state TSan needs to see contended.
 */
TEST(ConcurrencyStressTest, ConcurrentPoolsFromDistinctOwners)
{
    constexpr int kOwners = 3;
    constexpr std::size_t kItems = 5000;

    std::vector<std::vector<double>> outputs(
        kOwners, std::vector<double>(kItems, 0.0));
    std::vector<std::thread> owners;
    owners.reserve(kOwners);
    for (int o = 0; o < kOwners; ++o) {
        owners.emplace_back([&, o] {
            ThreadPool pool(2);
            auto &out = outputs[static_cast<std::size_t>(o)];
            pool.parallelFor(kItems, 64, [&](std::size_t i) {
                out[i] = std::sqrt(static_cast<double>(i + 1));
            });
        });
    }
    for (auto &owner : owners)
        owner.join();

    for (const auto &out : outputs) {
        for (std::size_t i = 0; i < kItems; ++i)
            ASSERT_EQ(out[i], std::sqrt(static_cast<double>(i + 1)));
    }
}

/**
 * Cancellation soak: concurrent sweepAll callers share children of
 * one token while another thread trips it mid-flight.  Under TSan
 * this races the token's latch against checkpoint polls from every
 * pool worker *and* races the memo cache's "never cache a stopped
 * result" path against concurrent fills.  Whatever the
 * interleaving, each caller must end in a consistent state, and a
 * final clean call must prove no stopped result leaked into the
 * cache.
 */
TEST(ConcurrencyStressTest, ConcurrentSweepAllRacingSharedCancel)
{
    constexpr int kCallers = 4;
    // A batch size no other test uses -> a cold cache key that the
    // cancelled and surviving callers fight over.
    const std::vector<double> batches{216.0};

    const CancelToken parent = CancelToken::make();
    std::vector<explore::SweepResult> results(kCallers);
    std::vector<std::thread> callers;
    callers.reserve(kCallers);
    for (int t = 0; t < kCallers; ++t) {
        callers.emplace_back([&, t] {
            explore::Explorer explorer(stressModel());
            explorer.setThreads(2);
            explorer.setCancelToken(parent.child());
            results[static_cast<std::size_t>(t)] =
                explorer.sweepAll(batches, stressJob());
        });
    }
    std::thread canceller([&] { parent.cancel(); });
    for (auto &caller : callers)
        caller.join();
    canceller.join();

    for (const auto &result : results) {
        // Every ending is legal under the race; every ending must be
        // internally consistent.
        EXPECT_EQ(result.entries.size() + result.skipped +
                      result.memorySkipped,
                  result.visitedPoints);
        if (result.status == RunStatus::Completed)
            EXPECT_EQ(result.cancelledUnvisited, 0u);
        else
            EXPECT_EQ(result.status, RunStatus::Cancelled);
    }

    // The cache must serve only Completed grids afterwards.
    explore::Explorer clean_explorer(stressModel());
    clean_explorer.setThreads(2);
    const explore::SweepResult clean =
        clean_explorer.sweepAll(batches, stressJob());
    EXPECT_EQ(clean.status, RunStatus::Completed);
    EXPECT_EQ(clean.cancelledUnvisited, 0u);
    ASSERT_GT(clean.entries.size(), 0u);
}

} // namespace
} // namespace amped

/**
 * @file
 * Tests for OpCounter: exact MAC formulas, nonlinear counts, MoE
 * scaling, activation / weight element counts, and FLOP conventions.
 */

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "model/op_counter.hpp"
#include "model/presets.hpp"

namespace amped {
namespace model {
namespace {

TransformerConfig
tiny()
{
    return presets::tinyTest(); // L=4, h=64, a=4, s=32, ffn=256
}

TEST(OpCounterTest, AttentionMacsMatchClosedForm)
{
    OpCounter counter(tiny());
    const double b = 8.0, s = 32.0, h = 64.0;
    const auto ops = counter.layerOps(0, b);
    ASSERT_GE(ops.size(), 1u);
    EXPECT_EQ(ops[0].kind, Sublayer::attention);
    // 4 b s h^2 + 2 b s^2 h.
    const double expected =
        4.0 * b * s * h * h + 2.0 * b * s * s * h;
    EXPECT_DOUBLE_EQ(ops[0].macs, expected);
}

TEST(OpCounterTest, FeedForwardMacsMatchClosedForm)
{
    OpCounter counter(tiny());
    const double b = 8.0, s = 32.0, h = 64.0, ffn = 256.0;
    const auto ops = counter.layerOps(0, b);
    ASSERT_GE(ops.size(), 2u);
    EXPECT_EQ(ops[1].kind, Sublayer::feedForward);
    EXPECT_DOUBLE_EQ(ops[1].macs, b * s * 2.0 * h * ffn);
}

TEST(OpCounterTest, SoftmaxNonlinearScalesWithScores)
{
    OpCountOptions options;
    options.softmaxOpsPerScore = 5.0;
    OpCounter counter(tiny(), options);
    const double b = 2.0, s = 32.0, a = 4.0;
    const auto ops = counter.layerOps(0, b);
    EXPECT_DOUBLE_EQ(ops[0].nonlinear, 5.0 * b * a * s * s);
}

TEST(OpCounterTest, DenseLayerHasNoGatingSublayer)
{
    OpCounter counter(tiny());
    const auto ops = counter.layerOps(0, 4.0);
    EXPECT_EQ(ops.size(), 3u); // attention, ffn, layernorm
}

TEST(OpCounterTest, MoeLayerAddsGatingAndScalesFfn)
{
    auto cfg = tiny();
    cfg.moe.numExperts = 8;
    cfg.moe.expertsPerToken = 2;
    cfg.moe.moeLayerInterval = 2;
    OpCounter counter(cfg);

    const auto dense_ops = counter.layerOps(0, 4.0);  // dense layer
    const auto moe_ops = counter.layerOps(1, 4.0);    // expert layer
    EXPECT_EQ(dense_ops.size(), 3u);
    ASSERT_EQ(moe_ops.size(), 4u);
    EXPECT_EQ(moe_ops[3].kind, Sublayer::moeGating);
    // Top-2 routing doubles the per-token FFN work.
    EXPECT_DOUBLE_EQ(moe_ops[1].macs, 2.0 * dense_ops[1].macs);
    EXPECT_GT(moe_ops[3].macs, 0.0);
}

TEST(OpCounterTest, LayerMacsAreLinearInBatch)
{
    OpCounter counter(tiny());
    const double m1 = counter.layerMacsForward(0, 4.0);
    const double m2 = counter.layerMacsForward(0, 8.0);
    EXPECT_DOUBLE_EQ(m2, 2.0 * m1);
    const double n1 = counter.layerNonlinForward(0, 4.0);
    const double n2 = counter.layerNonlinForward(0, 8.0);
    EXPECT_DOUBLE_EQ(n2, 2.0 * n1);
}

TEST(OpCounterTest, ModelMacsSumOverLayers)
{
    OpCounter counter(tiny());
    double per_layer_sum = 0.0;
    for (std::int64_t l = 0; l < 4; ++l)
        per_layer_sum += counter.layerMacsForward(l, 4.0);
    EXPECT_DOUBLE_EQ(counter.modelMacsForward(4.0), per_layer_sum);
}

TEST(OpCounterTest, ActivationCountsMatchPaper)
{
    OpCounter counter(tiny());
    const double b = 8.0, s = 32.0, h = 64.0;
    // N_act_TP = 2 b s h (Eq. 6); N_act_PP = b s h (Eq. 7).
    EXPECT_DOUBLE_EQ(counter.activationsTensorParallel(b),
                     2.0 * b * s * h);
    EXPECT_DOUBLE_EQ(counter.activationsPipelineParallel(b),
                     b * s * h);
}

TEST(OpCounterTest, MoeActivationsOnlyOnExpertLayers)
{
    auto cfg = tiny();
    cfg.moe.numExperts = 4;
    cfg.moe.moeLayerInterval = 2;
    cfg.moe.expertsPerToken = 2;
    OpCounter counter(cfg);
    EXPECT_DOUBLE_EQ(counter.activationsMoe(0, 8.0), 0.0);
    // Top-2 routing doubles the dispatched token payload.
    EXPECT_DOUBLE_EQ(counter.activationsMoe(1, 8.0),
                     2.0 * counter.activationsPipelineParallel(8.0));
}

TEST(OpCounterTest, ExpertGradientsAreSharded)
{
    auto cfg = tiny();
    cfg.moe.numExperts = 8;
    cfg.moe.moeLayerInterval = 2;
    OpCounter counter(cfg);
    // Dense layer: gradients equal weights.
    EXPECT_DOUBLE_EQ(counter.gradientsPerLayer(0),
                     counter.weightsPerLayer(0));
    // MoE layer: far fewer gradients than weights (experts sharded),
    // but more than zero and at least the dense share.
    EXPECT_LT(counter.gradientsPerLayer(1),
              counter.weightsPerLayer(1) / 2.0);
    EXPECT_GT(counter.gradientsPerLayer(1), 0.0);
}

TEST(OpCounterTest, WeightsMatchParameterCount)
{
    const auto cfg = presets::minGpt85M();
    OpCounter counter(cfg);
    EXPECT_NEAR(counter.totalLayerWeights(),
                cfg.parameterCount(/*include_embeddings=*/false),
                1.0);
}

TEST(OpCounterTest, EmbeddingMacsAreLogitProjection)
{
    OpCounter counter(tiny());
    const double b = 4.0;
    EXPECT_DOUBLE_EQ(counter.embeddingMacs(b),
                     b * 32.0 * 64.0 * 1000.0);
}

TEST(OpCounterTest, FlopConventionRecomputeVsPlain)
{
    OpCountOptions with, without;
    with.activationRecompute = true;
    without.activationRecompute = false;
    OpCounter c_with(tiny(), with);
    OpCounter c_without(tiny(), without);
    const double f_with = c_with.modelFlopsPerBatch(4.0);
    const double f_without = c_without.modelFlopsPerBatch(4.0);
    // 4x forward vs 3x forward.
    EXPECT_NEAR(f_with / f_without, 4.0 / 3.0, 1e-12);
}

TEST(OpCounterTest, FlopsExcludeEmbeddingsWhenDisabled)
{
    OpCountOptions with, without;
    without.includeEmbeddingFlops = false;
    OpCounter c_with(tiny(), with);
    OpCounter c_without(tiny(), without);
    EXPECT_GT(c_with.modelFlopsPerBatch(4.0),
              c_without.modelFlopsPerBatch(4.0));
}

TEST(OpCounterTest, Gpt3FlopsPerTokenMatchSixNRule)
{
    // Standard check: forward+backward FLOPs/token of a dense model
    // ~ 6 x parameters (without recompute).
    OpCountOptions options;
    options.activationRecompute = false;
    options.includeEmbeddingFlops = false;
    const auto cfg = presets::gpt3_175B();
    OpCounter counter(cfg, options);
    const double batch = 1.0;
    const double tokens = static_cast<double>(cfg.seqLength);
    const double flops_per_token =
        counter.modelFlopsPerBatch(batch) / tokens;
    const double six_n = 6.0 * cfg.parameterCount(false);
    EXPECT_NEAR(flops_per_token / six_n, 1.0, 0.15);
}

TEST(OpCounterTest, RejectsBadArguments)
{
    OpCounter counter(tiny());
    EXPECT_THROW(counter.layerOps(-1, 4.0), UserError);
    EXPECT_THROW(counter.layerOps(4, 4.0), UserError);
    EXPECT_THROW(counter.layerOps(0, 0.0), UserError);
    EXPECT_THROW(counter.weightsPerLayer(99), UserError);
    EXPECT_THROW(counter.modelFlopsPerBatch(-1.0), UserError);
}

TEST(OpCounterTest, SublayerNamesAreStable)
{
    EXPECT_EQ(sublayerName(Sublayer::attention), "attention");
    EXPECT_EQ(sublayerName(Sublayer::feedForward), "feed-forward");
    EXPECT_EQ(sublayerName(Sublayer::layerNorm), "layernorm");
    EXPECT_EQ(sublayerName(Sublayer::moeGating), "moe-gating");
}

} // namespace
} // namespace model
} // namespace amped

/**
 * @file
 * Tests for the structured run report: schema envelope, the
 * acceptance bar that the serialized analytical breakdown reproduces
 * `core::AmpedModel` to 1e-9, and the simulation/metrics sections.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "core/amped_model.hpp"
#include "hw/presets.hpp"
#include "mapping/parallelism.hpp"
#include "model/presets.hpp"
#include "net/system_config.hpp"
#include "obs/run_report.hpp"
#include "sim/training_sim.hpp"

namespace amped {
namespace obs {
namespace {

net::SystemConfig
testSystem()
{
    net::SystemConfig sys;
    sys.name = "test-2x4";
    sys.numNodes = 2;
    sys.acceleratorsPerNode = 4;
    sys.intraLink =
        net::LinkConfig{"intra", Seconds{1e-6}, BitsPerSecond{2.4e12}};
    sys.interLink =
        net::LinkConfig{"inter", Seconds{2e-6}, BitsPerSecond{2e11}};
    sys.nicsPerNode = 4;
    return sys;
}

core::EvaluationResult
testEvaluation()
{
    const core::AmpedModel model(model::presets::tinyTest(),
                                 hw::presets::tinyTest(),
                                 hw::MicrobatchEfficiency(0.8, 4.0),
                                 testSystem());
    core::TrainingJob job;
    job.batchSize = 64.0;
    job.numBatchesOverride = 100.0;
    return model.evaluate(mapping::makeMapping(4, 1, 1, 1, 2, 1),
                          job);
}

sim::SimOutcome
testOutcome()
{
    sim::TrainingSimulator simulator(
        model::presets::tinyTest(), hw::presets::tinyTest(),
        hw::MicrobatchEfficiency(0.8, 4.0),
        net::LinkConfig{"intra", Seconds{1e-6}, BitsPerSecond{2.4e12}});
    return simulator.simulateDataParallelStep(4, 8.0);
}

TEST(RunReportTest, AnalyticalBreakdownMatchesModelTo1em9)
{
    const auto result = testEvaluation();
    const Json section = analyticalJson(result);

    // The serialized numbers must reproduce the evaluator exactly:
    // sum the breakdown back up *from the JSON* and compare.
    double total = 0.0;
    for (const auto &[label, seconds] :
         section.at("breakdown").members())
        total += seconds.asDouble();
    EXPECT_NEAR(total, result.timePerBatch, 1e-9);
    EXPECT_DOUBLE_EQ(
        section.at("time_per_batch_seconds").asDouble(),
        result.timePerBatch);
    EXPECT_DOUBLE_EQ(
        section.at("breakdown_total_seconds").asDouble(),
        result.perBatch.total());

    // ... and survive a serialize -> parse round trip bit-exactly.
    const Json reparsed = Json::parse(section.dump(2));
    EXPECT_DOUBLE_EQ(
        reparsed.at("time_per_batch_seconds").asDouble(),
        result.timePerBatch);
    EXPECT_DOUBLE_EQ(reparsed.at("training_days").asDouble(),
                     result.trainingDays());
}

TEST(RunReportTest, AnalyticalSectionHasAllSchemaFields)
{
    const Json section = analyticalJson(testEvaluation());
    for (const char *field :
         {"time_per_batch_seconds", "breakdown",
          "breakdown_total_seconds", "computation_seconds",
          "communication_seconds", "num_batches",
          "total_time_seconds", "training_days", "microbatch_size",
          "num_microbatches", "efficiency",
          "achieved_flops_per_gpu", "tokens_per_second"})
        EXPECT_TRUE(section.contains(field)) << field;
}

TEST(RunReportTest, SimulationSectionCountsTasksAndDevices)
{
    const auto outcome = testOutcome();
    const Json section = simulationJson("dp4", outcome);
    EXPECT_EQ(section.at("label").asString(), "dp4");
    EXPECT_DOUBLE_EQ(section.at("step_time_seconds").asDouble(),
                     outcome.stepTime);
    EXPECT_EQ(section.at("task_count").asInt(),
              static_cast<std::int64_t>(outcome.graph->taskCount()));
    EXPECT_EQ(section.at("devices").size(), 4u);
    // Every graph task lands in exactly one category bucket.
    std::int64_t categorized = 0;
    for (const auto &[category, count] :
         section.at("tasks_by_category").members())
        categorized += count.asInt();
    EXPECT_EQ(categorized, section.at("task_count").asInt());
    // Fault-free run: no failure section.
    EXPECT_FALSE(section.contains("failure"));
}

TEST(RunReportTest, SimulationSectionRequiresGraph)
{
    sim::SimOutcome empty;
    EXPECT_THROW(simulationJson("bad", empty), UserError);
}

TEST(RunReportTest, MetricsSectionFollowsRenderMode)
{
    MetricsRegistry registry;
    registry.counter("runs").add(2);
    registry.histogram("wait.seconds", true).observe(0.25);

    const Json det =
        metricsJson(registry, RenderMode::deterministic);
    EXPECT_EQ(det.at("runs").asInt(), 2);
    EXPECT_EQ(det.at("wait.seconds.count").asInt(), 1);
    EXPECT_FALSE(det.contains("wait.seconds.sum"));

    const Json full = metricsJson(registry, RenderMode::full);
    EXPECT_DOUBLE_EQ(full.at("wait.seconds.sum").asDouble(), 0.25);
}

TEST(RunReportTest, BuilderAssemblesVersionedEnvelope)
{
    MetricsRegistry registry;
    registry.counter("runs").add(1);

    RunReportBuilder builder;
    builder.setConfig(Json::object().set("model", "tiny"))
        .setAnalytical(testEvaluation())
        .addSimulation("dp4", testOutcome())
        .setMetrics(registry);
    const Json report = builder.build();

    EXPECT_EQ(report.at("schema_version").asInt(),
              kRunReportSchemaVersion);
    EXPECT_EQ(report.at("generator").asString(), "amped");
    EXPECT_EQ(report.at("config").at("model").asString(), "tiny");
    EXPECT_EQ(report.at("simulations").size(), 1u);
    EXPECT_EQ(report.at("metrics").at("runs").asInt(), 1);
    // Envelope order is fixed by the schema: version first.
    EXPECT_EQ(report.members()[0].first, "schema_version");

    // The document is valid JSON end to end.
    const std::string text = report.dump(2);
    EXPECT_EQ(Json::parse(text).dump(2), text);
}

TEST(RunReportTest, SchemaV2GuaranteesCancelAndQueueMetrics)
{
    // Fresh registry, no token or queue ever created: the v2
    // contract still renders every instrument of both families, as
    // zeros, so report consumers can rely on the keys existing.
    MetricsRegistry registry;
    RunReportBuilder builder;
    builder.setMetrics(registry);
    const Json metrics = builder.build().at("metrics");

    for (const char *key :
         {"common.cancel.tokens", "common.cancel.requests",
          "common.cancel.checkpoints", "common.cancel.observed",
          "common.cancel.latency_seconds.count",
          "common.queue.depth", "common.queue.submitted",
          "common.queue.completed", "common.queue.rejected",
          "common.queue.shed", "common.queue.expired",
          "common.queue.retries", "common.queue.failed"}) {
        ASSERT_TRUE(metrics.contains(key)) << key;
        EXPECT_DOUBLE_EQ(metrics.at(key).asDouble(), 0.0) << key;
    }
}

TEST(RunReportTest, EmptyBuilderStillEmitsEnvelope)
{
    const Json report = RunReportBuilder().build();
    EXPECT_EQ(report.at("schema_version").asInt(),
              kRunReportSchemaVersion);
    EXPECT_FALSE(report.contains("config"));
    EXPECT_FALSE(report.contains("analytical"));
    EXPECT_FALSE(report.contains("simulations"));
    EXPECT_FALSE(report.contains("metrics"));
}

} // namespace
} // namespace obs
} // namespace amped

/**
 * @file
 * Tests for the obs JSON value type: construction, serialization,
 * parsing, and the round-trip guarantees the trace/report exporters
 * rely on.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "obs/json.hpp"

namespace amped {
namespace obs {
namespace {

TEST(ObsJsonTest, ScalarKindsAndAccessors)
{
    EXPECT_TRUE(Json().isNull());
    EXPECT_TRUE(Json(nullptr).isNull());
    EXPECT_TRUE(Json(true).asBool());
    EXPECT_FALSE(Json(false).asBool());
    EXPECT_DOUBLE_EQ(Json(1.5).asDouble(), 1.5);
    EXPECT_EQ(Json(std::int64_t{-7}).asInt(), -7);
    EXPECT_EQ(Json(42).asInt(), 42);
    EXPECT_EQ(Json("hi").asString(), "hi");
    // Integers are readable through the double accessor too.
    EXPECT_DOUBLE_EQ(Json(3).asDouble(), 3.0);
    // Kind mismatches throw instead of coercing.
    EXPECT_THROW(Json("hi").asDouble(), UserError);
    EXPECT_THROW(Json(1.0).asString(), UserError);
}

TEST(ObsJsonTest, ObjectPreservesInsertionOrder)
{
    Json obj = Json::object();
    obj.set("zulu", 1).set("alpha", 2).set("mike", 3);
    ASSERT_EQ(obj.members().size(), 3u);
    EXPECT_EQ(obj.members()[0].first, "zulu");
    EXPECT_EQ(obj.members()[1].first, "alpha");
    EXPECT_EQ(obj.members()[2].first, "mike");
    EXPECT_TRUE(obj.contains("alpha"));
    EXPECT_FALSE(obj.contains("tango"));
    EXPECT_EQ(obj.at("mike").asInt(), 3);
    EXPECT_THROW(obj.at("tango"), UserError);
}

TEST(ObsJsonTest, DuplicateObjectKeysThrow)
{
    Json obj = Json::object();
    obj.set("key", 1);
    EXPECT_THROW(obj.set("key", 2), UserError);
}

TEST(ObsJsonTest, ArrayPushAndAccess)
{
    Json arr = Json::array();
    arr.push(1).push("two").push(3.0);
    EXPECT_EQ(arr.size(), 3u);
    EXPECT_EQ(arr.at(std::size_t{0}).asInt(), 1);
    EXPECT_EQ(arr.at(std::size_t{1}).asString(), "two");
    EXPECT_THROW(arr.at(std::size_t{3}), UserError);
    // Array ops on non-arrays throw.
    EXPECT_THROW(Json(1).push(2), UserError);
    // Object ops on non-objects throw.
    EXPECT_THROW(Json(1).set("k", 2), UserError);
}

TEST(ObsJsonTest, EmptyMirrorsSize)
{
    EXPECT_TRUE(Json::array().empty());
    EXPECT_TRUE(Json::object().empty());
    Json arr = Json::array();
    arr.push(1);
    EXPECT_FALSE(arr.empty());
    Json obj = Json::object();
    obj.set("k", 1);
    EXPECT_FALSE(obj.empty());
    // Scalars have no emptiness, matching size().
    EXPECT_THROW(Json(1).empty(), UserError);
}

TEST(ObsJsonTest, DumpCompactAndPretty)
{
    Json obj = Json::object();
    obj.set("a", 1);
    obj.set("b", Json::array().push(true).push(nullptr));
    EXPECT_EQ(obj.dump(), "{\"a\":1,\"b\":[true,null]}");
    EXPECT_EQ(obj.dump(2),
              "{\n  \"a\": 1,\n  \"b\": [\n    true,\n    null\n  ]\n}");
    EXPECT_EQ(Json::object().dump(2), "{}");
    EXPECT_EQ(Json::array().dump(2), "[]");
}

TEST(ObsJsonTest, NonFiniteDoublesSerializeAsNull)
{
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const double inf = std::numeric_limits<double>::infinity();
    EXPECT_EQ(Json(nan).dump(), "null");
    EXPECT_EQ(Json(inf).dump(), "null");
    EXPECT_EQ(Json(-inf).dump(), "null");
}

TEST(ObsJsonTest, NumberFormattingRoundTrips)
{
    // Shortest representation that survives strtod, same policy as
    // testing/golden: integers-as-doubles stay exact, and irrational
    // doubles keep every bit.
    for (const double value :
         {0.0, 1.0, -2.5, 1.0 / 3.0, 6.02214076e23, 1e-300,
          0.5311205102369209}) {
        const std::string text = formatDouble(value);
        EXPECT_EQ(std::strtod(text.c_str(), nullptr), value)
            << "formatDouble(" << value << ") = " << text;
    }
}

TEST(ObsJsonTest, StringEscapes)
{
    EXPECT_EQ(quoteJsonString("a\"b\\c\n\t"),
              "\"a\\\"b\\\\c\\n\\t\"");
    // Control characters below 0x20 become \u00XX.
    EXPECT_EQ(quoteJsonString(std::string(1, '\x01')), "\"\\u0001\"");
    const Json parsed = Json::parse("\"a\\\"b\\\\c\\n\\t\\u0041\"");
    EXPECT_EQ(parsed.asString(), "a\"b\\c\n\tA");
}

TEST(ObsJsonTest, ParseRoundTrip)
{
    const std::string text =
        "{\"schema_version\": 1, \"values\": [1.5, -2, true, null], "
        "\"nested\": {\"label\": \"dp8\"}}";
    const Json parsed = Json::parse(text);
    EXPECT_EQ(parsed.at("schema_version").asInt(), 1);
    EXPECT_EQ(parsed.at("values").size(), 4u);
    EXPECT_EQ(parsed.at("nested").at("label").asString(), "dp8");
    // dump -> parse -> dump is a fixpoint.
    const std::string once = parsed.dump(2);
    EXPECT_EQ(Json::parse(once).dump(2), once);
}

TEST(ObsJsonTest, ParseRejectsMalformedInput)
{
    EXPECT_THROW(Json::parse(""), UserError);
    EXPECT_THROW(Json::parse("{"), UserError);
    EXPECT_THROW(Json::parse("[1,]"), UserError);
    EXPECT_THROW(Json::parse("{\"a\":1 \"b\":2}"), UserError);
    EXPECT_THROW(Json::parse("nul"), UserError);
    EXPECT_THROW(Json::parse("1 2"), UserError);       // trailing junk
    EXPECT_THROW(Json::parse("'single'"), UserError);
    EXPECT_THROW(Json::parse("{\"a\":1,\"a\":2}"), UserError);
}

TEST(ObsJsonTest, LargeUnsignedDegradesToDouble)
{
    // Values above int64 max cannot be represented exactly; the
    // constructor documents the degrade-to-double behavior.
    const std::uint64_t big =
        static_cast<std::uint64_t>(
            std::numeric_limits<std::int64_t>::max()) + 2u;
    const Json json(big);
    EXPECT_DOUBLE_EQ(json.asDouble(),
                     static_cast<double>(big));
    const Json small(std::uint64_t{17});
    EXPECT_EQ(small.asInt(), 17);
}

} // namespace
} // namespace obs
} // namespace amped

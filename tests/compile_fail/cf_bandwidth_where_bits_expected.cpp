// Passing a bandwidth where a data size is expected — the historical
// Gb-vs-GB class of bug — must fail to compile.
#include "common/quantity.hpp"

namespace {

double
payloadBytes(amped::Bits bits)
{
    return bits.value() / 8.0;
}

} // namespace

int
main()
{
    using namespace amped;
    return static_cast<int>(
        payloadBytes(BitsPerSecond{1e9})); // must NOT compile
}

// Positive control: idiomatic quantity usage must compile, or every
// negative test in this directory is vacuous.
#include "common/quantity.hpp"

int
main()
{
    using namespace amped;
    const Bits traffic{1e9};
    const BitsPerSecond bandwidth{2e9};
    const Seconds transfer = traffic / bandwidth;
    const double cycles = transfer * Hertz{1.4e9};
    const Joules energy = Watts{400.0} * transfer;
    return (cycles > 0.0 && energy.value() > 0.0 &&
            transfer.value() > 0.0)
               ? 0
               : 1;
}

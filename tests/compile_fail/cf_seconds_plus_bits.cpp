// Adding a time to a data size is dimensionally meaningless; the
// quantity layer must reject it.
#include "common/quantity.hpp"

int
main()
{
    using namespace amped;
    const Seconds s{1.0};
    const Bits b{8.0};
    const auto broken = s + b; // must NOT compile
    (void)broken;
    return 0;
}

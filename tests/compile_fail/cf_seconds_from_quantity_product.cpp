// Dimension arithmetic must propagate: bits * (bits/s) is not a
// time, so binding the product to Seconds must fail even though both
// operands are "network-ish" quantities.
#include "common/quantity.hpp"

int
main()
{
    using namespace amped;
    const Seconds broken =
        Bits{1e9} * BitsPerSecond{1e9}; // must NOT compile
    return broken.value() > 0.0 ? 0 : 1;
}

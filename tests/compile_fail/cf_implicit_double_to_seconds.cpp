// Quantity construction from a raw double is explicit: an implicit
// conversion would let an unit-less literal sneak into a typed seam.
#include "common/quantity.hpp"

namespace {

amped::Seconds
coolDown()
{
    return 1.5; // must NOT compile: requires Seconds{1.5}
}

} // namespace

int
main()
{
    return coolDown().value() > 0.0 ? 0 : 1;
}

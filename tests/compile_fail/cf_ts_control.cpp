// Control snippet for the thread-safety negatives: correct locking
// discipline over an AMPED_GUARDED_BY member.  Must compile cleanly
// under Clang with -Werror=thread-safety, proving that a failure of
// cf_ts_guarded_by_violation.cpp comes from the capability analysis
// and not from a broken flag or include path.

#include "common/thread_annotations.hpp"

class Counter
{
  public:
    void
    increment()
    {
        amped::MutexLock lock(mutex_);
        ++value_;
    }

    int
    read()
    {
        amped::MutexLock lock(mutex_);
        return value_;
    }

  private:
    amped::Mutex mutex_;
    int value_ AMPED_GUARDED_BY(mutex_) = 0;
};

int
main()
{
    Counter counter;
    counter.increment();
    return counter.read() == 1 ? 0 : 1;
}

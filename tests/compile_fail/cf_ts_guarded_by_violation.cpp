// Thread-safety negative: reads an AMPED_GUARDED_BY member without
// holding its mutex.  Clang's -Werror=thread-safety must reject this
// translation unit; if it ever compiles, the annotation layer has
// stopped guarding anything (e.g. the macros expanded to nothing
// under a compiler the gate thought was Clang).

#include "common/thread_annotations.hpp"

class Counter
{
  public:
    void
    increment()
    {
        amped::MutexLock lock(mutex_);
        ++value_;
    }

    int
    racyRead()
    {
        return value_; // BAD: no lock held — the analysis must flag
                       // reading a guarded field without mutex_.
    }

  private:
    amped::Mutex mutex_;
    int value_ AMPED_GUARDED_BY(mutex_) = 0;
};

int
main()
{
    Counter counter;
    counter.increment();
    return counter.racyRead();
}

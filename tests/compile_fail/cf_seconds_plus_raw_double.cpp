// The batch kernels' boundary rule (DESIGN.md): values crossing
// from a raw-double SoA column back into model code must be
// re-wrapped explicitly -- `time + Seconds{column[i]}`.  Adding a
// bare column element to a quantity must not compile, or the
// wrapping discipline is unenforceable.
#include <vector>

#include "common/quantity.hpp"

int
main()
{
    using namespace amped;
    const std::vector<double> column = {1.0, 2.0};
    const Seconds total = Seconds{3.0} + column[0];
    return total.value() > 0.0 ? 0 : 1;
}

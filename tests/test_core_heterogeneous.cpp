/**
 * @file
 * Tests for the heterogeneous-pipeline extension: evaluation,
 * bottleneck identification, and the layer-balancing optimizer.
 */

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/heterogeneous.hpp"
#include "hw/presets.hpp"
#include "model/presets.hpp"

namespace amped {
namespace core {
namespace {

model::OpCounter
counter()
{
    return model::OpCounter(model::presets::minGptPipeline());
}

net::LinkConfig
hopLink()
{
    return net::LinkConfig{"hop", Seconds{2e-6},
                           BitsPerSecond{2.4e12}};
}

HeterogeneousStage
stageOf(const hw::AcceleratorConfig &accel, std::int64_t layers)
{
    HeterogeneousStage stage;
    stage.accelerator = accel;
    stage.efficiency = hw::MicrobatchEfficiency(0.8, 8.0);
    stage.numLayers = layers;
    return stage;
}

TEST(HeterogeneousTest, HomogeneousStagesShareTimeEvenly)
{
    // 16 layers over 4 identical V100 stages.
    std::vector<HeterogeneousStage> stages(
        4, stageOf(hw::presets::v100Sxm3(), 4));
    HeterogeneousPipelineModel model(counter(), stages, hopLink());
    TrainingJob job;
    job.batchSize = 64.0;
    job.numBatchesOverride = 1.0;
    const auto result = model.evaluate(job);
    ASSERT_EQ(result.stageTimes.size(), 4u);
    for (double t : result.stageTimes)
        EXPECT_NEAR(t, result.stageTimes[0], 1e-12);
    EXPECT_GT(result.timePerBatch, 0.0);
}

TEST(HeterogeneousTest, SlowerDeviceBecomesBottleneck)
{
    // Stage 1 runs on a P100 (~6x slower than V100): even with the
    // same layer count it dominates.
    std::vector<HeterogeneousStage> stages = {
        stageOf(hw::presets::v100Sxm3(), 8),
        stageOf(hw::presets::p100Pcie(), 8),
    };
    HeterogeneousPipelineModel model(counter(), stages, hopLink());
    TrainingJob job;
    job.batchSize = 64.0;
    job.numBatchesOverride = 1.0;
    const auto result = model.evaluate(job);
    EXPECT_EQ(result.bottleneckStage, 1);
    EXPECT_GT(result.stageTimes[1], 4.0 * result.stageTimes[0]);
}

TEST(HeterogeneousTest, MixedClusterBeatsAllSlowCluster)
{
    std::vector<HeterogeneousStage> slow(
        4, stageOf(hw::presets::p100Pcie(), 4));
    std::vector<HeterogeneousStage> mixed = {
        stageOf(hw::presets::v100Sxm3(), 4),
        stageOf(hw::presets::v100Sxm3(), 4),
        stageOf(hw::presets::p100Pcie(), 4),
        stageOf(hw::presets::p100Pcie(), 4),
    };
    TrainingJob job;
    job.batchSize = 64.0;
    job.numBatchesOverride = 1.0;
    const double t_slow =
        HeterogeneousPipelineModel(counter(), slow, hopLink())
            .evaluate(job)
            .timePerBatch;
    const double t_mixed =
        HeterogeneousPipelineModel(counter(), mixed, hopLink())
            .evaluate(job)
            .timePerBatch;
    EXPECT_LT(t_mixed, t_slow);
}

TEST(HeterogeneousTest, BalancerGivesFastDevicesMoreLayers)
{
    std::vector<HeterogeneousStage> stages = {
        stageOf(hw::presets::v100Sxm3(), 0),
        stageOf(hw::presets::p100Pcie(), 0),
    };
    const auto balanced = HeterogeneousPipelineModel::balanceLayers(
        counter(), stages, 8.0);
    ASSERT_EQ(balanced.size(), 2u);
    EXPECT_EQ(balanced[0].numLayers + balanced[1].numLayers, 16);
    // V100 is ~6x faster: it should carry clearly more layers.
    EXPECT_GT(balanced[0].numLayers, balanced[1].numLayers);
    EXPECT_GE(balanced[1].numLayers, 1);
}

TEST(HeterogeneousTest, BalancedSplitBeatsNaiveEvenSplit)
{
    std::vector<HeterogeneousStage> even = {
        stageOf(hw::presets::v100Sxm3(), 8),
        stageOf(hw::presets::p100Pcie(), 8),
    };
    auto balanced = HeterogeneousPipelineModel::balanceLayers(
        counter(), even, 8.0);
    TrainingJob job;
    job.batchSize = 64.0;
    job.numBatchesOverride = 1.0;
    const double t_even =
        HeterogeneousPipelineModel(counter(), even, hopLink())
            .evaluate(job)
            .timePerBatch;
    const double t_balanced =
        HeterogeneousPipelineModel(counter(), balanced, hopLink())
            .evaluate(job)
            .timePerBatch;
    EXPECT_LT(t_balanced, t_even);
}

TEST(HeterogeneousTest, BalancerHandlesHomogeneousStagesEvenly)
{
    std::vector<HeterogeneousStage> stages(
        4, stageOf(hw::presets::v100Sxm3(), 0));
    const auto balanced = HeterogeneousPipelineModel::balanceLayers(
        counter(), stages, 8.0);
    for (const auto &stage : balanced)
        EXPECT_EQ(stage.numLayers, 4);
}

TEST(HeterogeneousTest, TpInsideAStageSpeedsItUp)
{
    auto narrow = stageOf(hw::presets::v100Sxm3(), 16);
    auto wide = narrow;
    wide.tpDegree = 8;
    TrainingJob job;
    job.batchSize = 64.0;
    job.numBatchesOverride = 1.0;
    const double t_narrow =
        HeterogeneousPipelineModel(counter(), {narrow}, hopLink())
            .evaluate(job)
            .timePerBatch;
    const double t_wide =
        HeterogeneousPipelineModel(counter(), {wide}, hopLink())
            .evaluate(job)
            .timePerBatch;
    EXPECT_LT(t_wide, t_narrow);
    EXPECT_GT(t_wide, t_narrow / 8.0); // all-reduce overhead
}

TEST(HeterogeneousTest, ValidatesConstruction)
{
    // Layer counts must sum to the model's layers.
    std::vector<HeterogeneousStage> bad = {
        stageOf(hw::presets::v100Sxm3(), 8),
        stageOf(hw::presets::v100Sxm3(), 4),
    };
    EXPECT_THROW(
        HeterogeneousPipelineModel(counter(), bad, hopLink()),
        UserError);
    EXPECT_THROW(
        HeterogeneousPipelineModel(counter(), {}, hopLink()),
        UserError);
    std::vector<HeterogeneousStage> zero_layers = {
        stageOf(hw::presets::v100Sxm3(), 16),
        stageOf(hw::presets::v100Sxm3(), 0),
    };
    EXPECT_THROW(
        HeterogeneousPipelineModel(counter(), zero_layers, hopLink()),
        UserError);
}

} // namespace
} // namespace core
} // namespace amped

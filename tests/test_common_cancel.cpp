/**
 * @file
 * Tests for the cooperative-cancellation substrate
 * (common/cancel.hpp): deadlines under an injected clock, token
 * composition (explicit cancel ∥ deadline ∥ parent), the checkpoint
 * trip seam, latency-histogram accounting, and the zero-cost
 * guarantee for inert tokens — plus the cancellable
 * ThreadPool::parallelFor overload built on top.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <limits>
#include <vector>

#include "common/cancel.hpp"
#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"

namespace amped {
namespace {

TEST(DeadlineTest, NeverSetNeverExpires)
{
    const Deadline never;
    EXPECT_FALSE(never.isSet());
    EXPECT_FALSE(never.expired());
    EXPECT_EQ(never.remainingSeconds(),
              std::numeric_limits<double>::infinity());
    EXPECT_FALSE(Deadline::never().isSet());
}

TEST(DeadlineTest, ExpiresExactlyWhenClockPasses)
{
    ManualClock clock(100.0);
    const Deadline deadline = Deadline::after(2.5, clock);
    EXPECT_TRUE(deadline.isSet());
    EXPECT_FALSE(deadline.expired());
    EXPECT_DOUBLE_EQ(deadline.remainingSeconds(), 2.5);

    clock.advance(2.5);
    EXPECT_TRUE(deadline.expired());
    EXPECT_DOUBLE_EQ(deadline.remainingSeconds(), 0.0);

    clock.advance(10.0);
    EXPECT_DOUBLE_EQ(deadline.remainingSeconds(), 0.0);
}

TEST(DeadlineTest, NonPositiveBudgetIsAlreadyExpired)
{
    ManualClock clock(5.0);
    EXPECT_TRUE(Deadline::after(0.0, clock).expired());
    EXPECT_TRUE(Deadline::after(-1.0, clock).expired());
}

TEST(CancelTokenTest, InertTokenAnswersCompletedForever)
{
    const CancelToken inert;
    EXPECT_FALSE(inert.installed());
    EXPECT_EQ(inert.status(), RunStatus::Completed);
    EXPECT_EQ(inert.checkpoint(), RunStatus::Completed);
    inert.cancel(); // No-op, must not crash.
    EXPECT_FALSE(inert.cancelRequested());
    EXPECT_EQ(inert.status(), RunStatus::Completed);
}

TEST(CancelTokenTest, InertTokenTouchesNoMetrics)
{
    obs::MetricsRegistry registry;
    const CancelToken inert;
    (void)inert.checkpoint();
    (void)inert.status();
    inert.cancel();
    // Zero-cost when unused: nothing was even registered.
    EXPECT_TRUE(registry.snapshot().empty());
}

TEST(CancelTokenTest, ExplicitCancelObservedAtCheckpoint)
{
    obs::MetricsRegistry registry;
    const CancelToken token =
        CancelToken::make(Deadline(), &registry);
    EXPECT_TRUE(token.installed());
    EXPECT_EQ(token.checkpoint(), RunStatus::Completed);

    token.cancel();
    EXPECT_TRUE(token.cancelRequested());
    EXPECT_EQ(token.status(), RunStatus::Cancelled);
    EXPECT_EQ(token.checkpoint(), RunStatus::Cancelled);
    // Latched: never reverts.
    EXPECT_EQ(token.checkpoint(), RunStatus::Cancelled);
}

TEST(CancelTokenTest, DeadlineExpiryProducesDeadlineExceeded)
{
    ManualClock clock(0.0);
    obs::MetricsRegistry registry;
    const CancelToken token =
        CancelToken::make(Deadline::after(1.0, clock), &registry);

    EXPECT_EQ(token.status(), RunStatus::Completed);
    clock.advance(1.0);
    EXPECT_EQ(token.status(), RunStatus::DeadlineExceeded);
    EXPECT_EQ(token.checkpoint(), RunStatus::DeadlineExceeded);
}

TEST(CancelTokenTest, ExplicitCancelWinsOverExpiredDeadline)
{
    ManualClock clock(0.0);
    obs::MetricsRegistry registry;
    const CancelToken token =
        CancelToken::make(Deadline::after(1.0, clock), &registry);
    clock.advance(5.0); // Deadline long gone...
    token.cancel();     // ...but an explicit request trumps it.
    EXPECT_EQ(token.status(), RunStatus::Cancelled);
}

TEST(CancelTokenTest, ChildStopsWhenParentIsCancelled)
{
    obs::MetricsRegistry registry;
    const CancelToken parent =
        CancelToken::make(Deadline(), &registry);
    const CancelToken child = parent.child();
    const CancelToken grandchild = child.child();

    EXPECT_EQ(grandchild.status(), RunStatus::Completed);
    parent.cancel();
    EXPECT_EQ(child.status(), RunStatus::Cancelled);
    EXPECT_EQ(grandchild.status(), RunStatus::Cancelled);
    // The request lives on the parent, not the child.
    EXPECT_FALSE(child.cancelRequested());
}

TEST(CancelTokenTest, ChildDeadlineDoesNotAffectParent)
{
    ManualClock clock(0.0);
    obs::MetricsRegistry registry;
    const CancelToken parent =
        CancelToken::make(Deadline(), &registry);
    const CancelToken child =
        parent.child(Deadline::after(1.0, clock));

    clock.advance(2.0);
    EXPECT_EQ(child.status(), RunStatus::DeadlineExceeded);
    EXPECT_EQ(parent.status(), RunStatus::Completed);
}

TEST(CancelTokenTest, TripAfterCheckpointsFiresOnExactCount)
{
    obs::MetricsRegistry registry;
    const CancelToken token =
        CancelToken::make(Deadline(), &registry);
    token.tripAfterCheckpoints(3);

    EXPECT_EQ(token.checkpoint(), RunStatus::Completed);
    EXPECT_EQ(token.checkpoint(), RunStatus::Completed);
    // The third checkpoint trips and reports the stop itself.
    EXPECT_EQ(token.checkpoint(), RunStatus::Cancelled);
    EXPECT_EQ(token.status(), RunStatus::Cancelled);
}

TEST(CancelTokenTest, LatencyHistogramRecordsFirstObservationOnly)
{
    ManualClock clock(0.0);
    obs::MetricsRegistry registry;
    const CancelToken token =
        CancelToken::make(Deadline::after(1.0, clock), &registry);
    auto &latency = registry.histogram(
        "common.cancel.latency_seconds", /*timing=*/true);
    auto &observed = registry.counter("common.cancel.observed");

    (void)token.checkpoint(); // Live, nothing to observe.
    EXPECT_EQ(latency.count(), 0u);

    // The deadline expired at t=1; the first checkpoint to notice
    // runs at t=1.25, so the recorded latency is exactly 0.25 s.
    clock.set(1.25);
    EXPECT_EQ(token.checkpoint(), RunStatus::DeadlineExceeded);
    EXPECT_EQ(latency.count(), 1u);
    EXPECT_DOUBLE_EQ(latency.sum(), 0.25);
    EXPECT_EQ(observed.value(), 1u);

    // Later checkpoints still answer but observe nothing new.
    clock.set(9.0);
    EXPECT_EQ(token.checkpoint(), RunStatus::DeadlineExceeded);
    EXPECT_EQ(latency.count(), 1u);
    EXPECT_DOUBLE_EQ(latency.sum(), 0.25);
}

TEST(CancelTokenTest, MetricsCountTokensRequestsCheckpoints)
{
    obs::MetricsRegistry registry;
    const CancelToken root =
        CancelToken::make(Deadline(), &registry);
    const CancelToken child = root.child();
    (void)child;
    EXPECT_EQ(registry.counter("common.cancel.tokens").value(), 2u);

    (void)root.checkpoint();
    (void)root.checkpoint();
    EXPECT_EQ(registry.counter("common.cancel.checkpoints").value(),
              2u);

    root.cancel();
    root.cancel(); // Idempotent: one request recorded.
    EXPECT_EQ(registry.counter("common.cancel.requests").value(), 1u);
}

TEST(CancelTokenTest, RegisterCancellationMetricsCreatesAllZeros)
{
    obs::MetricsRegistry registry;
    registerCancellationMetrics(registry);
    const auto snaps = registry.snapshot();
    ASSERT_EQ(snaps.size(), 5u);
    for (const auto &snap : snaps) {
        EXPECT_EQ(snap.count, 0u) << snap.name;
        EXPECT_EQ(snap.name.rfind("common.cancel.", 0), 0u)
            << snap.name;
    }
}

TEST(RunStatusTest, ToStringIsStable)
{
    EXPECT_STREQ(toString(RunStatus::Completed), "completed");
    EXPECT_STREQ(toString(RunStatus::Cancelled), "cancelled");
    EXPECT_STREQ(toString(RunStatus::DeadlineExceeded),
                 "deadline-exceeded");
}

TEST(ParallelForCancelTest, CompletesWithInertToken)
{
    ThreadPool pool(4);
    std::vector<int> hits(1000, 0);
    const RunStatus status = pool.parallelFor(
        hits.size(), 16,
        [&](std::size_t i) { hits[i] = 1; }, CancelToken());
    EXPECT_EQ(status, RunStatus::Completed);
    for (const int hit : hits)
        ASSERT_EQ(hit, 1);
}

TEST(ParallelForCancelTest, PreCancelledTokenRunsNothing)
{
    obs::MetricsRegistry registry;
    const CancelToken token =
        CancelToken::make(Deadline(), &registry);
    token.cancel();

    ThreadPool pool(4);
    std::atomic<std::size_t> ran{0};
    const RunStatus status = pool.parallelFor(
        100000, 8,
        [&](std::size_t) {
            ran.fetch_add(1, std::memory_order_relaxed);
        },
        token);
    EXPECT_EQ(status, RunStatus::Cancelled);
    // Stops at chunk granularity: nothing, or at most the chunks
    // each worker had already claimed before observing the stop.
    EXPECT_EQ(ran.load(), 0u);
}

TEST(ParallelForCancelTest, SerialPathObservesCancelBetweenChunks)
{
    obs::MetricsRegistry registry;
    const CancelToken token =
        CancelToken::make(Deadline(), &registry);

    ThreadPool pool(4);
    std::size_t ran = 0;
    const RunStatus status = pool.parallelFor(
        1000, 10,
        [&](std::size_t i) {
            ++ran;
            if (i == 14) // Cancel from inside the second chunk.
                token.cancel();
        },
        token, /*max_workers=*/1);
    EXPECT_EQ(status, RunStatus::Cancelled);
    // The cancelling chunk finishes (indices 10..19), later chunks
    // never start.
    EXPECT_EQ(ran, 20u);
}

} // namespace
} // namespace amped

/**
 * @file
 * serve protocol + server tests: the table-driven bad-input matrix
 * (malformed JSON, duplicate keys, unknown methods, oversized
 * bodies, expired deadlines — every one must produce a structured
 * error response and leave the server alive), the pipelined-burst
 * admission semantics, the shared LRU cache, cancellation flushing
 * partial results, the TCP transport, and the byte-identical
 * transcript determinism contract the load-generator golden pins.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.hpp"
#include "common/error.hpp"
#include "common/keyval.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace amped {
namespace {

/** Server + private registry pair (the registry must outlive it). */
struct Harness
{
    explicit Harness(serve::ServerOptions options = {})
        : server((options.registry = &registry, options))
    {}

    obs::Json
    one(const std::string &line)
    {
        const std::string out = server.handleLine(line);
        EXPECT_EQ(out.find('\n'), std::string::npos) << out;
        return obs::Json::parse(out);
    }

    obs::MetricsRegistry registry;
    serve::Server server;
};

std::string
tinyEvalRequest(int id)
{
    return "{\"id\":" + std::to_string(id) +
           ",\"method\":\"eval\",\"params\":{\"model\":\"145b\","
           "\"nodes\":2,\"per-node\":2,\"batch\":512,"
           "\"tp-intra\":2,\"dp-inter\":2}}";
}

std::string
tinySweepRequest(int id)
{
    return "{\"id\":" + std::to_string(id) +
           ",\"method\":\"sweep\",\"params\":{\"model\":\"145b\","
           "\"nodes\":2,\"per-node\":2,\"batch\":512,\"top\":3}}";
}

// ---------------------------------------------------------------
// Table-driven bad input: every row must produce one structured
// response with the expected status and a diagnostic containing the
// expected fragment — and the server must still answer a ping
// afterwards (checked once after the whole table).

struct BadInputCase
{
    const char *name;
    const char *line;
    const char *status;   ///< Expected response status.
    const char *fragment; ///< Substring of error.message.
    bool idIsNull;        ///< True when the id cannot be echoed.
};

const BadInputCase kBadInputs[] = {
    {"malformed-json", "{\"id\":1,\"method\":", "error",
     "json", true},
    {"not-json-at-all", "hello there", "error", "json", true},
    {"duplicate-keys",
     "{\"id\":1,\"id\":2,\"method\":\"ping\"}", "error",
     "duplicate", true},
    {"duplicate-params-keys",
     "{\"id\":4,\"method\":\"ping\",\"params\":{\"a\":1,\"a\":2}}",
     "error", "duplicate", true},
    {"unknown-method", "{\"id\":9,\"method\":\"frobnicate\"}",
     "error", "unknown method 'frobnicate'", false},
    {"missing-method", "{\"id\":9}", "error", "missing 'method'",
     false},
    {"missing-id", "{\"method\":\"ping\"}", "error",
     "missing 'id'", true},
    {"negative-id", "{\"id\":-3,\"method\":\"ping\"}", "error",
     "'id' must be >= 0", true},
    {"negative-deadline",
     "{\"id\":5,\"method\":\"ping\",\"deadline_ms\":-1}", "error",
     "'deadline_ms' must be >= 0", false},
    {"unknown-envelope-key",
     "{\"id\":5,\"method\":\"ping\",\"extra\":1}", "error",
     "unknown request key 'extra'", false},
    {"unknown-params-key",
     "{\"id\":6,\"method\":\"eval\",\"params\":{\"warp\":9}}",
     "error", "unknown params key 'warp'", false},
    {"params-not-object",
     "{\"id\":6,\"method\":\"eval\",\"params\":7}", "error",
     "'params' must be a JSON object", false},
    {"empty-burst", "[]", "error", "burst array must not be empty",
     true},
    {"burst-of-scalars", "[1,2]", "error", "not a JSON object",
     true},
    {"expired-deadline",
     "{\"id\":7,\"method\":\"sweep\",\"deadline_ms\":0}", "expired",
     "deadline expired before the request ran", false},
};

TEST(ServeProtocolTest, BadInputsReturnStructuredErrors)
{
    Harness harness;
    for (const auto &row : kBadInputs) {
        SCOPED_TRACE(row.name);
        const obs::Json response = harness.one(row.line);
        EXPECT_EQ(response.at("schema_version").asInt(),
                  serve::kServeSchemaVersion);
        EXPECT_EQ(response.at("status").asString(), row.status);
        if (row.idIsNull) {
            EXPECT_EQ(response.at("id").kind(),
                      obs::Json::Kind::null);
        } else {
            EXPECT_NE(response.at("id").kind(),
                      obs::Json::Kind::null);
        }
        const std::string message =
            response.at("error").at("message").asString();
        EXPECT_NE(message.find(row.fragment), std::string::npos)
            << "message was: " << message;
    }
    // The server survived the whole table.
    const obs::Json pong = harness.one("{\"id\":99,\"method\":"
                                       "\"ping\"}");
    EXPECT_EQ(pong.at("status").asString(), "ok");
    EXPECT_TRUE(
        pong.at("result").at("pong").asBool());
}

TEST(ServeProtocolTest, OversizedBodyRejectedWithoutDying)
{
    serve::ServerOptions options;
    options.maxRequestBytes = 128;
    Harness harness(options);

    std::string big = "{\"id\":1,\"method\":\"ping\",\"params\":{"
                      "\"model\":\"";
    big.append(200, 'x');
    big += "\"}}";
    const obs::Json response = harness.one(big);
    EXPECT_EQ(response.at("status").asString(), "error");
    const std::string message =
        response.at("error").at("message").asString();
    EXPECT_NE(message.find("exceeding the 128-byte limit"),
              std::string::npos)
        << message;

    EXPECT_EQ(harness.one("{\"id\":2,\"method\":\"ping\"}")
                  .at("status")
                  .asString(),
              "ok");
}

TEST(ServeProtocolTest, FieldNamedDiagnosticsFromConfigIo)
{
    Harness harness;
    const obs::Json response = harness.one(
        "{\"id\":1,\"method\":\"eval\",\"params\":{\"system\":"
        "{\"nodes\":2,\"per-node\":2,\"warp\":9}}}");
    EXPECT_EQ(response.at("status").asString(), "error");
    const std::string message =
        response.at("error").at("message").asString();
    EXPECT_NE(message.find("params.system"), std::string::npos)
        << message;
    EXPECT_NE(message.find("warp"), std::string::npos) << message;
}

TEST(ServeProtocolTest, BlankLinesProduceNoResponse)
{
    Harness harness;
    EXPECT_EQ(harness.server.handleLine(""), "");
    EXPECT_EQ(harness.server.handleLine("   \t "), "");
}

// ---------------------------------------------------------------
// Bursts and admission control.

TEST(ServeProtocolTest, BurstAnswersInOrderWithEchoedIds)
{
    Harness harness;
    const std::string out = harness.server.handleLine(
        "[{\"id\":3,\"method\":\"ping\"},"
        "{\"id\":1,\"method\":\"ping\"},"
        "{\"id\":2,\"method\":\"frobnicate\"}]");
    std::istringstream lines(out);
    std::string line;
    std::vector<obs::Json> responses;
    while (std::getline(lines, line))
        responses.push_back(obs::Json::parse(line));
    ASSERT_EQ(responses.size(), 3u);
    EXPECT_EQ(responses[0].at("id").asInt(), 3);
    EXPECT_EQ(responses[0].at("status").asString(), "ok");
    EXPECT_EQ(responses[1].at("id").asInt(), 1);
    EXPECT_EQ(responses[1].at("status").asString(), "ok");
    EXPECT_EQ(responses[2].at("id").asInt(), 2);
    EXPECT_EQ(responses[2].at("status").asString(), "error");
}

TEST(ServeProtocolTest, BurstBeyondCapacityIsRejectedDeterministically)
{
    serve::ServerOptions options;
    options.queueCapacity = 2;
    Harness harness(options);

    const std::string out = harness.server.handleLine(
        "[{\"id\":0,\"method\":\"ping\"},"
        "{\"id\":1,\"method\":\"ping\"},"
        "{\"id\":2,\"method\":\"ping\"},"
        "{\"id\":3,\"method\":\"ping\"}]");
    std::istringstream lines(out);
    std::string line;
    std::vector<std::string> statuses;
    while (std::getline(lines, line))
        statuses.push_back(
            obs::Json::parse(line).at("status").asString());
    ASSERT_EQ(statuses.size(), 4u);
    EXPECT_EQ(statuses[0], "ok");
    EXPECT_EQ(statuses[1], "ok");
    EXPECT_EQ(statuses[2], "rejected");
    EXPECT_EQ(statuses[3], "rejected");
}

TEST(ServeProtocolTest, ShedOldestDropsTheEarliestQueuedRequest)
{
    serve::ServerOptions options;
    options.queueCapacity = 2;
    options.overloadPolicy = OverloadPolicy::shedOldest;
    Harness harness(options);

    const std::string out = harness.server.handleLine(
        "[{\"id\":0,\"method\":\"ping\"},"
        "{\"id\":1,\"method\":\"ping\"},"
        "{\"id\":2,\"method\":\"ping\"}]");
    std::istringstream lines(out);
    std::string line;
    std::vector<obs::Json> responses;
    while (std::getline(lines, line))
        responses.push_back(obs::Json::parse(line));
    ASSERT_EQ(responses.size(), 3u);
    EXPECT_EQ(responses[0].at("status").asString(), "shed");
    EXPECT_EQ(responses[1].at("status").asString(), "ok");
    EXPECT_EQ(responses[2].at("status").asString(), "ok");
}

// ---------------------------------------------------------------
// Evaluation, cache, and cancellation.

TEST(ServeProtocolTest, SweepRepeatHitsTheSharedCache)
{
    Harness harness;
    const obs::Json first = harness.one(tinySweepRequest(1));
    ASSERT_EQ(first.at("status").asString(), "ok");
    EXPECT_FALSE(first.at("cached").asBool());

    const obs::Json second = harness.one(tinySweepRequest(2));
    ASSERT_EQ(second.at("status").asString(), "ok");
    EXPECT_TRUE(second.at("cached").asBool());

    // Identical results either way, and the counters agree.
    EXPECT_EQ(first.at("result").dump(), second.at("result").dump());
    EXPECT_EQ(harness.registry.counter("serve.cache.hits").value(),
              1u);
    EXPECT_EQ(
        harness.registry.counter("serve.cache.misses").value(), 1u);
    EXPECT_EQ(harness.server.cache().size(), 1u);
}

TEST(ServeProtocolTest, EvalMatchesDirectModelPrediction)
{
    Harness harness;
    const obs::Json response = harness.one(tinyEvalRequest(11));
    ASSERT_EQ(response.at("status").asString(), "ok");
    EXPECT_EQ(response.at("run_status").asString(), "completed");
    const auto &analytical =
        response.at("result").at("analytical");
    EXPECT_GT(analytical.at("time_per_batch_seconds").asDouble(),
              0.0);
    EXPECT_GT(analytical.at("tokens_per_second").asDouble(), 0.0);
}

TEST(ServeProtocolTest, CancelledSweepFlushesPartialResult)
{
    Harness harness;
    CancelToken root = CancelToken::make();
    harness.server.setCancelToken(root);
    root.cancel();

    // A batch size no other test (or the loadgen) sweeps, so the
    // Explorer's process-wide memo cache cannot already hold a
    // Completed grid for this key.
    const obs::Json response = harness.one(
        "{\"id\":21,\"method\":\"sweep\",\"params\":{\"model\":"
        "\"145b\",\"nodes\":2,\"per-node\":2,\"batch\":640,"
        "\"top\":3}}");
    ASSERT_EQ(response.at("status").asString(), "ok");
    EXPECT_EQ(response.at("run_status").asString(), "cancelled");
    // A cancelled sweep is never memoized: repeating it after the
    // token recovers must re-evaluate (miss), not replay the stub.
    EXPECT_EQ(harness.server.cache().size(), 0u);
}

TEST(ServeProtocolTest, ReportCarriesSchemaV3AndServeMetrics)
{
    Harness harness;
    (void)harness.one(tinyEvalRequest(1));
    const obs::Json response = harness.one(
        "{\"id\":2,\"method\":\"report\",\"params\":{\"model\":"
        "\"145b\",\"nodes\":2,\"per-node\":2,\"batch\":512,"
        "\"tp-intra\":2,\"dp-inter\":2}}");
    ASSERT_EQ(response.at("status").asString(), "ok");
    const auto &report = response.at("result").at("report");
    EXPECT_EQ(report.at("schema_version").asInt(), 3);
    const auto &metrics = report.at("metrics");
    EXPECT_TRUE(metrics.contains("serve.cache.hits"));
    EXPECT_TRUE(metrics.contains("serve.cache.misses"));
    EXPECT_TRUE(metrics.contains("serve.cache.evicted_bytes"));
    EXPECT_TRUE(metrics.contains(
        "serve.request.latency_seconds.count"));
    // The eval + this report were both measured by the latency
    // histogram before the snapshot was taken... the report itself
    // is still in flight, so exactly one completed request counts.
    EXPECT_EQ(metrics.at("serve.request.latency_seconds.count")
                  .asInt(),
              1);
}

// ---------------------------------------------------------------
// serveStream and determinism.

TEST(ServeProtocolTest, ServeStreamEchoesOneLinePerRequest)
{
    Harness harness;
    std::istringstream in("{\"id\":1,\"method\":\"ping\"}\n"
                          "\n"
                          "{\"id\":2,\"method\":\"ping\"}\n");
    std::ostringstream out;
    EXPECT_EQ(harness.server.serveStream(in, out),
              RunStatus::Completed);
    std::istringstream lines(out.str());
    std::string line;
    int count = 0;
    while (std::getline(lines, line)) {
        const obs::Json response = obs::Json::parse(line);
        EXPECT_EQ(response.at("status").asString(), "ok");
        ++count;
    }
    EXPECT_EQ(count, 2);
}

TEST(ServeProtocolTest, ServeStreamStopsWhenTokenTrips)
{
    Harness harness;
    CancelToken root = CancelToken::make();
    harness.server.setCancelToken(root);
    root.cancel();
    std::istringstream in("{\"id\":1,\"method\":\"ping\"}\n");
    std::ostringstream out;
    EXPECT_EQ(harness.server.serveStream(in, out),
              RunStatus::Cancelled);
    EXPECT_TRUE(out.str().empty());
}

TEST(ServeProtocolTest, TranscriptIsByteIdenticalAcrossServers)
{
    const std::vector<std::string> traffic = {
        "{\"id\":1,\"method\":\"ping\"}",
        tinySweepRequest(2),
        tinyEvalRequest(3),
        tinySweepRequest(4), // cache hit
        "{\"id\":5,\"method\":\"frobnicate\"}",
    };
    auto run = [&traffic](unsigned threads) {
        obs::MetricsRegistry registry;
        serve::ServerOptions options;
        options.threads = threads;
        options.registry = &registry;
        serve::Server server(options);
        std::string transcript;
        for (const auto &line : traffic) {
            transcript += server.handleLine(line);
            transcript += '\n';
        }
        return transcript;
    };
    const std::string serial = run(1);
    const std::string parallel = run(4);
    EXPECT_EQ(serial, parallel);
}

// ---------------------------------------------------------------
// Options parsing.

TEST(ServeProtocolTest, OptionsFromConfigParsesEveryKey)
{
    const auto config = KeyValueConfig::fromString(
        "threads = 2\n"
        "queue-capacity = 4\n"
        "overload-policy = shed-oldest\n"
        "max-attempts = 3\n"
        "default-deadline-ms = 250\n"
        "max-request-bytes = 4096\n"
        "cache-budget-bytes = 65536\n"
        "max-grid-points = 1000\n"
        "report-dir = /tmp/reports\n");
    const auto options = serve::optionsFromConfig(config);
    EXPECT_EQ(options.threads, 2u);
    EXPECT_EQ(options.queueCapacity, 4u);
    EXPECT_EQ(options.overloadPolicy, OverloadPolicy::shedOldest);
    EXPECT_EQ(options.maxAttempts, 3u);
    EXPECT_DOUBLE_EQ(options.defaultDeadlineMs, 250.0);
    EXPECT_EQ(options.maxRequestBytes, 4096u);
    EXPECT_EQ(options.cacheBudgetBytes, 65536u);
    EXPECT_EQ(options.maxGridPoints, 1000u);
    EXPECT_EQ(options.reportDir, "/tmp/reports");
}

TEST(ServeProtocolTest, OptionsFromConfigRejectsBadValues)
{
    EXPECT_THROW(serve::optionsFromConfig(
                     KeyValueConfig::fromString("typo-key = 1\n")),
                 UserError);
    EXPECT_THROW(
        serve::optionsFromConfig(KeyValueConfig::fromString(
            "overload-policy = drop-everything\n")),
        UserError);
    EXPECT_THROW(serve::optionsFromConfig(KeyValueConfig::fromString(
                     "queue-capacity = 0\n")),
                 UserError);
}

// ---------------------------------------------------------------
// SweepCacheLru unit behavior.

TEST(ServeProtocolTest, SweepCacheEvictsLeastRecentlyUsedByBytes)
{
    obs::MetricsRegistry registry;
    serve::SweepCacheLru cache(/*budget_bytes=*/48, &registry);

    cache.put("a", std::string(20, 'x')); // 21 bytes
    cache.put("b", std::string(20, 'y')); // 21 bytes
    EXPECT_EQ(cache.size(), 2u);

    // Refresh "a" so "b" is the LRU victim when "c" arrives.
    EXPECT_TRUE(cache.get("a").has_value());
    cache.put("c", std::string(20, 'z'));
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_TRUE(cache.get("a").has_value());
    EXPECT_FALSE(cache.get("b").has_value());
    EXPECT_TRUE(cache.get("c").has_value());

    EXPECT_EQ(registry.counter("serve.cache.evictions").value(),
              1u);
    EXPECT_EQ(
        registry.counter("serve.cache.evicted_bytes").value(), 21u);
    EXPECT_LE(cache.bytes(), cache.budgetBytes());

    // An entry larger than the whole budget is a no-op.
    cache.put("huge", std::string(100, 'h'));
    EXPECT_FALSE(cache.get("huge").has_value());
}

// ---------------------------------------------------------------
// TCP transport.

TEST(ServeProtocolTest, TcpRoundTripAndShutdown)
{
    Harness harness;
    CancelToken root = CancelToken::make();
    harness.server.setCancelToken(root);

    std::thread service([&] {
        harness.server.serveTcp(/*port=*/0);
    });
    std::uint16_t port = 0;
    for (int i = 0; i < 200 && port == 0; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        port = harness.server.boundPort();
    }
    ASSERT_NE(port, 0) << "server never bound";

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    const std::string request = "{\"id\":1,\"method\":\"ping\"}\n";
    ASSERT_EQ(::send(fd, request.data(), request.size(), 0),
              static_cast<ssize_t>(request.size()));
    std::string response;
    char chunk[512];
    while (response.find('\n') == std::string::npos) {
        const ssize_t got = ::read(fd, chunk, sizeof(chunk));
        ASSERT_GT(got, 0);
        response.append(chunk, static_cast<std::size_t>(got));
    }
    ::close(fd);

    const obs::Json parsed =
        obs::Json::parse(response.substr(0, response.find('\n')));
    EXPECT_EQ(parsed.at("status").asString(), "ok");
    EXPECT_TRUE(parsed.at("result").at("pong").asBool());

    root.cancel();
    service.join();
    EXPECT_EQ(harness.server.boundPort(), 0);
}

} // namespace
} // namespace amped

/**
 * @file
 * Tests for the markdown report generator.
 */

#include <gtest/gtest.h>

#include "explore/report.hpp"
#include "hw/presets.hpp"
#include "model/presets.hpp"
#include "net/system_config.hpp"

namespace amped {
namespace explore {
namespace {

core::AmpedModel
reportModel()
{
    net::SystemConfig sys;
    sys.name = "report-4x4";
    sys.numNodes = 4;
    sys.acceleratorsPerNode = 4;
    sys.intraLink =
        net::LinkConfig{"intra", Seconds{1e-6}, BitsPerSecond{2.4e12}};
    sys.interLink =
        net::LinkConfig{"inter", Seconds{2e-6}, BitsPerSecond{2e11}};
    sys.nicsPerNode = 4;
    return core::AmpedModel(model::presets::minGpt85M(),
                            hw::presets::v100Sxm3(),
                            hw::MicrobatchEfficiency(0.8, 8.0), sys);
}

core::TrainingJob
reportJob()
{
    core::TrainingJob job;
    job.batchSize = 256.0;
    job.numBatchesOverride = 100.0;
    return job;
}

TEST(ReportTest, ContainsEverySection)
{
    const auto report = generateReport(
        reportModel(), mapping::makeMapping(4, 1, 1, 1, 1, 4),
        reportJob());
    for (const char *needle :
         {"# minGPT-85M on report-4x4", "## Configuration",
          "## Prediction", "## Per-batch breakdown",
          "## Memory per accelerator", "## Energy",
          "compute-forward", "pipeline-bubble",
          "| training time |", "| optimizer state |",
          "| training energy |"}) {
        EXPECT_NE(report.find(needle), std::string::npos) << needle;
    }
}

TEST(ReportTest, CustomTitleAndZeroStage)
{
    ReportOptions options;
    options.title = "capacity plan Q3";
    options.memory.zeroStage = core::ZeroStage::gradients;
    const auto report = generateReport(
        reportModel(), mapping::makeMapping(4, 1, 1, 1, 1, 4),
        reportJob(), options);
    EXPECT_NE(report.find("# capacity plan Q3"), std::string::npos);
    EXPECT_NE(report.find("(ZeRO-2)"), std::string::npos);
}

TEST(ReportTest, FitsVerdictIsStated)
{
    // minGPT on a V100 fits comfortably.
    const auto report = generateReport(
        reportModel(), mapping::makeMapping(4, 1, 1, 1, 1, 4),
        reportJob());
    EXPECT_NE(report.find("(fits)"), std::string::npos);
    EXPECT_EQ(report.find("DOES NOT FIT"), std::string::npos);
}

TEST(ReportTest, PowerSpecFlowsIntoEnergySection)
{
    ReportOptions options;
    options.power.tdpWatts = Watts{250.0}; // V100 TDP
    const auto report = generateReport(
        reportModel(), mapping::makeMapping(4, 1, 1, 1, 1, 4),
        reportJob(), options);
    EXPECT_NE(report.find("TDP 250 W"), std::string::npos);
}

} // namespace
} // namespace explore
} // namespace amped

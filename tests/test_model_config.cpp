/**
 * @file
 * Tests for TransformerConfig: validation, MoE layer placement, and
 * parameter counting against known model sizes.
 */

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "model/presets.hpp"
#include "model/transformer_config.hpp"

namespace amped {
namespace model {
namespace {

TEST(TransformerConfigTest, FactoryProducesValidConfig)
{
    const auto cfg = makeGptConfig("t", 12, 768, 12, 1024, 50000);
    EXPECT_EQ(cfg.ffnHiddenSize, 4 * 768);
    EXPECT_EQ(cfg.headDim(), 64);
    EXPECT_NO_THROW(cfg.validate());
}

TEST(TransformerConfigTest, ValidationCatchesEachBadField)
{
    auto good = presets::tinyTest();
    auto check = [&](auto mutate) {
        auto bad = good;
        mutate(bad);
        EXPECT_THROW(bad.validate(), UserError);
    };
    check([](TransformerConfig &c) { c.numLayers = 0; });
    check([](TransformerConfig &c) { c.hiddenSize = -1; });
    check([](TransformerConfig &c) { c.numHeads = 0; });
    check([](TransformerConfig &c) { c.numHeads = 7; }); // 64 % 7 != 0
    check([](TransformerConfig &c) { c.seqLength = 0; });
    check([](TransformerConfig &c) { c.vocabSize = 0; });
    check([](TransformerConfig &c) { c.ffnHiddenSize = 0; });
    check([](TransformerConfig &c) {
        c.moe.numExperts = 4;
        c.moe.expertsPerToken = 8; // top-k > experts
    });
    check([](TransformerConfig &c) {
        c.moe.numExperts = 4;
        c.moe.moeLayerInterval = 0;
    });
}

TEST(TransformerConfigTest, MoeLayerPlacementEveryOther)
{
    auto cfg = presets::tinyTest();
    cfg.moe.numExperts = 8;
    cfg.moe.moeLayerInterval = 2;
    cfg.validate();
    // Interval 2 -> layers 1, 3 of a 4-layer stack host experts.
    EXPECT_FALSE(cfg.isMoeLayer(0));
    EXPECT_TRUE(cfg.isMoeLayer(1));
    EXPECT_FALSE(cfg.isMoeLayer(2));
    EXPECT_TRUE(cfg.isMoeLayer(3));
    EXPECT_EQ(cfg.numMoeLayers(), 2);
}

TEST(TransformerConfigTest, DenseModelHasNoMoeLayers)
{
    const auto cfg = presets::minGpt85M();
    for (std::int64_t l = 0; l < cfg.numLayers; ++l)
        EXPECT_FALSE(cfg.isMoeLayer(l));
    EXPECT_EQ(cfg.numMoeLayers(), 0);
}

TEST(TransformerConfigTest, Gpt3ParameterCountIsAbout175B)
{
    const auto cfg = presets::gpt3_175B();
    const double params = cfg.parameterCount();
    EXPECT_NEAR(params / 1e9, 175.0, 5.0);
}

TEST(TransformerConfigTest, Megatron145BParameterCount)
{
    const double params = presets::megatron145B().parameterCount();
    EXPECT_NEAR(params / 1e9, 145.0, 5.0);
}

TEST(TransformerConfigTest, Megatron1TParameterCount)
{
    const double params = presets::megatron1T().parameterCount();
    EXPECT_NEAR(params / 1e12, 1.0, 0.05);
}

TEST(TransformerConfigTest, MinGpt85MWithoutEmbeddings)
{
    // The paper quotes 85 M for minGPT (12 x 768): layer weights only.
    const double params =
        presets::minGpt85M().parameterCount(/*include_embeddings=*/false);
    EXPECT_NEAR(params / 1e6, 85.0, 3.0);
}

TEST(TransformerConfigTest, MoeParametersScaleWithExperts)
{
    auto dense = presets::tinyTest();
    auto moe = dense;
    moe.moe.numExperts = 16;
    moe.moe.moeLayerInterval = 2;
    moe.validate();
    // Experts multiply FFN weights on half the layers: the MoE model
    // must be much larger but less than 16x.
    const double dense_params = dense.parameterCount(false);
    const double moe_params = moe.parameterCount(false);
    EXPECT_GT(moe_params, 2.0 * dense_params);
    EXPECT_LT(moe_params, 16.0 * dense_params);
}

/** Every preset must validate and have positive parameters. */
class PresetProperty
    : public ::testing::TestWithParam<TransformerConfig>
{};

TEST_P(PresetProperty, ValidatesAndCounts)
{
    const auto &cfg = GetParam();
    EXPECT_NO_THROW(cfg.validate());
    EXPECT_GT(cfg.parameterCount(), 0.0);
    EXPECT_GT(cfg.parameterCount(true), cfg.parameterCount(false));
    EXPECT_EQ(cfg.hiddenSize % cfg.numHeads, 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllPresets, PresetProperty,
    ::testing::Values(presets::tinyTest(), presets::minGpt85M(),
                      presets::minGptPipeline(), presets::gpt3_175B(),
                      presets::megatron145B(), presets::megatron310B(),
                      presets::megatron530B(), presets::megatron1T(),
                      presets::gpipeTransformer24(),
                      presets::glamMoE()),
    [](const ::testing::TestParamInfo<TransformerConfig> &info) {
        std::string name = info.param.name;
        for (char &ch : name)
            if (!std::isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        return name;
    });

} // namespace
} // namespace model
} // namespace amped

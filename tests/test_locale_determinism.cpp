/**
 * @file
 * Locale-independence regression tests: every numeric parse and
 * format path that feeds goldens, JSON, configs, or CLI flags must
 * produce byte-identical results under a comma-decimal locale
 * (de_DE.UTF-8).  This is the test for the PR 10 locale bug fix —
 * before it, std::strtod under LC_ALL=de_DE.UTF-8 read "0.5" as 0
 * and silently corrupted every golden.
 *
 * Each test installs the locale through an RAII guard (both the C
 * locale, which strtod/ostringstream's default classic-locale
 * assumption reads, and the C++ global locale, which freshly
 * constructed streams imbue) and skips when the container has no
 * de_DE.UTF-8 (CI generates it via locale-gen; see ci.yml).
 */

#include <gtest/gtest.h>

#include <clocale>
#include <cmath>
#include <locale>
#include <string>

#include "common/arg_parser.hpp"
#include "common/keyval.hpp"
#include "common/parse_num.hpp"
#include "obs/json.hpp"
#include "testing/golden.hpp"

namespace amped {
namespace {

/**
 * Installs a comma-decimal locale (C and C++ global) for one test
 * body and restores the previous state on destruction.  `ok()` is
 * false when the locale is not available on this system.
 */
class ScopedCommaLocale
{
  public:
    ScopedCommaLocale()
    {
        const char *previous = std::setlocale(LC_ALL, nullptr);
        previousC_ = previous == nullptr ? "C" : previous;
        if (std::setlocale(LC_ALL, kName) == nullptr)
            return;
        try {
            previousCpp_ = std::locale::global(std::locale(kName));
        } catch (const std::runtime_error &) {
            std::setlocale(LC_ALL, previousC_.c_str());
            return;
        }
        ok_ = true;
    }

    ~ScopedCommaLocale()
    {
        if (ok_)
            std::locale::global(previousCpp_);
        std::setlocale(LC_ALL, previousC_.c_str());
    }

    bool ok() const { return ok_; }

    static constexpr const char *kName = "de_DE.UTF-8";

  private:
    bool ok_ = false;
    std::string previousC_;
    std::locale previousCpp_;
};

#define SKIP_WITHOUT_COMMA_LOCALE(guard)                               \
    do {                                                               \
        if (!(guard).ok())                                             \
            GTEST_SKIP() << "locale " << ScopedCommaLocale::kName      \
                         << " not available on this system";           \
    } while (0)

TEST(LocaleDeterminismTest, LocaleActuallyUsesCommaDecimal)
{
    ScopedCommaLocale locale;
    SKIP_WITHOUT_COMMA_LOCALE(locale);
    // Sanity: the guard really changed the radix character, so the
    // tests below are exercising what they claim to.
    const struct lconv *conv = std::localeconv();
    ASSERT_NE(conv, nullptr);
    EXPECT_STREQ(conv->decimal_point, ",");
}

TEST(LocaleDeterminismTest, ParseDoubleIgnoresLocale)
{
    ScopedCommaLocale locale;
    SKIP_WITHOUT_COMMA_LOCALE(locale);
    EXPECT_DOUBLE_EQ(parseDouble("0.5"), 0.5);
    EXPECT_DOUBLE_EQ(parseDouble("-2.75e3"), -2750.0);
    EXPECT_DOUBLE_EQ(parseDouble("  +1e-3"), 1e-3);
    double value = 0.0;
    EXPECT_TRUE(tryParseDouble("6.02214076e23", value));
    EXPECT_DOUBLE_EQ(value, 6.02214076e23);
    // A comma is NOT a radix character to the canonical parser, in
    // any locale: "0,5" parses as 0 with ",5" left over.
    const char *end = nullptr;
    EXPECT_DOUBLE_EQ(parseDouble("0,5", &end), 0.0);
    EXPECT_STREQ(end, ",5");
    EXPECT_FALSE(tryParseDouble("0,5", value));
}

TEST(LocaleDeterminismTest, JsonNumbersRoundTripByteIdentically)
{
    // Reference bytes rendered under the default C locale...
    obs::Json reference = obs::Json::object();
    reference.set("ratio", 1.0 / 3.0).set("avogadro", 6.02214076e23);
    reference.set("tiny", 1e-300).set("neg", -2.5);
    const std::string expected = reference.dump();

    // ...must be reproduced exactly under the comma locale, both
    // when formatting and when reparsing.
    ScopedCommaLocale locale;
    SKIP_WITHOUT_COMMA_LOCALE(locale);
    obs::Json comma = obs::Json::object();
    comma.set("ratio", 1.0 / 3.0).set("avogadro", 6.02214076e23);
    comma.set("tiny", 1e-300).set("neg", -2.5);
    EXPECT_EQ(comma.dump(), expected);
    const obs::Json parsed = obs::Json::parse(expected);
    EXPECT_DOUBLE_EQ(parsed.at("ratio").asDouble(), 1.0 / 3.0);
    EXPECT_DOUBLE_EQ(parsed.at("avogadro").asDouble(), 6.02214076e23);
    EXPECT_DOUBLE_EQ(parsed.at("tiny").asDouble(), 1e-300);
    EXPECT_EQ(parsed.dump(), expected);
}

TEST(LocaleDeterminismTest, GoldenRecordsRoundTripByteIdentically)
{
    testing::GoldenRecord reference;
    reference.add("ratio", 1.0 / 3.0);
    reference.add("avogadro", 6.02214076e23);
    reference.add("half", 0.5);
    const std::string expected = reference.toString();

    ScopedCommaLocale locale;
    SKIP_WITHOUT_COMMA_LOCALE(locale);
    testing::GoldenRecord comma;
    comma.add("ratio", 1.0 / 3.0);
    comma.add("avogadro", 6.02214076e23);
    comma.add("half", 0.5);
    EXPECT_EQ(comma.toString(), expected);
    // Parsing the golden back under the comma locale recovers the
    // exact doubles (serialize is shortest-round-trip precision).
    const testing::GoldenRecord parsed =
        testing::GoldenRecord::fromString(expected);
    ASSERT_NE(parsed.find("ratio"), nullptr);
    EXPECT_EQ(*parsed.find("ratio"), 1.0 / 3.0);
    ASSERT_NE(parsed.find("avogadro"), nullptr);
    EXPECT_EQ(*parsed.find("avogadro"), 6.02214076e23);
    EXPECT_EQ(parsed.toString(), expected);
}

TEST(LocaleDeterminismTest, KeyValueConfigParsesDotDecimal)
{
    ScopedCommaLocale locale;
    SKIP_WITHOUT_COMMA_LOCALE(locale);
    const auto config = KeyValueConfig::fromString(
        "efficiency = 0.42\nbandwidth_scale = 1.5e2\n");
    EXPECT_DOUBLE_EQ(config.getDouble("efficiency"), 0.42);
    EXPECT_DOUBLE_EQ(config.getDouble("bandwidth_scale"), 150.0);
}

TEST(LocaleDeterminismTest, ArgParserParsesDotDecimal)
{
    ScopedCommaLocale locale;
    SKIP_WITHOUT_COMMA_LOCALE(locale);
    ArgParser parser;
    parser.addOption("efficiency", "test option", "0.0");
    parser.parse({"--efficiency", "0.37"});
    EXPECT_DOUBLE_EQ(parser.getDouble("efficiency"), 0.37);
}

} // namespace
} // namespace amped

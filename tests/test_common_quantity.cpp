/**
 * @file
 * Unit tests for the compile-time dimensional-analysis layer
 * (common/quantity.hpp).  The dimension-algebra laws are enforced by
 * static_asserts inside the header itself and by the negative
 * compilation tests in tests/compile_fail/; here we pin down the
 * numeric behavior: constexpr evaluation, the canonical-unit
 * constructors (including the GB/s-vs-Gb/s factor-of-8 trap), and
 * that formatting typed values matches formatting the raw doubles
 * they wrap.
 */

#include <gtest/gtest.h>

#include <functional>
#include <sstream>
#include <type_traits>

#include "common/quantity.hpp"
#include "common/units.hpp"

namespace amped {
namespace {

// ---------------------------------------------------------------------
// Constexpr behavior: the whole layer must be usable in constant
// expressions, so misuse surfaces at compile time even in constexpr
// contexts.
// ---------------------------------------------------------------------

constexpr Seconds kTransfer = Bits{1e9} / BitsPerSecond{2e9};
static_assert(kTransfer.value() == 0.5,
              "1 Gbit over 2 Gbit/s is half a second");

constexpr Seconds kCompute = Flops{6e12} / FlopsPerSecond{3e12};
static_assert(kCompute.value() == 2.0,
              "6 TFLOP at 3 TFLOP/s is two seconds");

constexpr double kCycles = Seconds{2.0} * Hertz{1.4e9};
static_assert(kCycles == 2.8e9,
              "seconds * Hz collapses to a plain cycle count");

constexpr Joules kEnergy = Watts{400.0} * Seconds{3.0};
static_assert(kEnergy.value() == 1200.0, "W * s accumulates J");

constexpr double kRatio = Seconds{3.0} / Seconds{6.0};
static_assert(kRatio == 0.5, "same-dimension ratios are doubles");

constexpr SecondsPerFlop kCost = 1.0 / FlopsPerSecond{2.0};
static_assert(kCost.value() == 0.5, "1 / rate inverts the dimension");

static_assert((Seconds{1.5} + Seconds{2.5}).value() == 4.0);
static_assert((Seconds{4.0} - Seconds{1.0}).value() == 3.0);
static_assert((-Seconds{2.0}).value() == -2.0);
static_assert((Seconds{2.0} * 3.0).value() == 6.0);
static_assert((3.0 * Seconds{2.0}).value() == 6.0);
static_assert((Seconds{6.0} / 3.0).value() == 2.0);
static_assert(Seconds{1.0} < Seconds{2.0});
static_assert(Seconds{2.0} == Seconds{2.0});
static_assert(Seconds{} .value() == 0.0,
              "default construction zero-initializes");

// ---------------------------------------------------------------------
// The GB/s-vs-Gb/s trap: the two vendor-unit constructors differ by
// exactly the bits-per-byte factor of 8.  This is the slip the typed
// layer exists to catch, so the factor is pinned both constexpr and
// at run time.
// ---------------------------------------------------------------------

static_assert(units::gigabytesPerSecondBw(1.0).value() == 8e9,
              "1 GB/s is 8e9 bit/s");
static_assert(units::gigabitsPerSecondBw(1.0).value() == 1e9,
              "1 Gb/s is 1e9 bit/s");
static_assert(units::gigabytesPerSecondBw(25.0).value() ==
                  8.0 * units::gigabitsPerSecondBw(25.0).value(),
              "GB/s and Gb/s constructors differ by exactly x8");
static_assert(units::bytesToBits(1.0).value() == 8.0);

TEST(Quantity, VendorUnitConstructorsMatchDoubleHelpers)
{
    // The typed constructors must reuse the double helpers' factors,
    // not restate them.
    EXPECT_DOUBLE_EQ(units::gigabytesPerSecondBw(2.4).value(),
                     units::gigabytesPerSecond(2.4));
    EXPECT_DOUBLE_EQ(units::gigabitsPerSecondBw(200.0).value(),
                     units::gigabitsPerSecond(200.0));
    EXPECT_DOUBLE_EQ(units::bytesToBits(512.0).value(),
                     512.0 * units::bitsPerByte);
}

// ---------------------------------------------------------------------
// Arithmetic round trips at run time (compound assignment is not
// usable in the static_asserts above without constexpr lambdas).
// ---------------------------------------------------------------------

TEST(Quantity, CompoundAssignmentMatchesDoubleArithmetic)
{
    Seconds t{1.0};
    t += Seconds{2.0};
    EXPECT_DOUBLE_EQ(t.value(), 3.0);
    t -= Seconds{0.5};
    EXPECT_DOUBLE_EQ(t.value(), 2.5);
    t *= 4.0;
    EXPECT_DOUBLE_EQ(t.value(), 10.0);
    t /= 2.0;
    EXPECT_DOUBLE_EQ(t.value(), 5.0);
}

TEST(Quantity, DimensionCombiningProductsAndQuotients)
{
    const Bits data = BitsPerSecond{3e9} * Seconds{2.0};
    EXPECT_DOUBLE_EQ(data.value(), 6e9);

    const Watts power = Joules{100.0} / Seconds{4.0};
    EXPECT_DOUBLE_EQ(power.value(), 25.0);

    const Seconds compute = Flops{10.0} * SecondsPerFlop{0.25};
    EXPECT_DOUBLE_EQ(compute.value(), 2.5);

    // Fully cancelled dimensions re-enter double arithmetic.
    const double utilization =
        FlopsPerSecond{5e12} / FlopsPerSecond{2e13};
    EXPECT_DOUBLE_EQ(utilization, 0.25);
}

// ---------------------------------------------------------------------
// Formatting: typed format() must render exactly what the raw-double
// helpers render, because reports and golden files were produced
// with the latter.
// ---------------------------------------------------------------------

TEST(Quantity, FormatMatchesRawDoubleHelpers)
{
    const double raw_seconds[] = {5.32e-4, 1.24, 3.5 * 3600.0,
                                  18.2 * 86400.0};
    for (double s : raw_seconds) {
        EXPECT_EQ(units::format(Seconds{s}),
                  units::formatDuration(s));
    }

    EXPECT_EQ(units::format(FlopsPerSecond{3.12e14}),
              units::formatFlops(3.12e14));
    EXPECT_EQ(units::format(BitsPerSecond{2.4e12}),
              units::formatBandwidth(2.4e12));
    EXPECT_EQ(units::format(Bits{1.45e11}),
              units::formatCount(1.45e11) + "bit");
}

TEST(Quantity, StreamInsertionMatchesRawDouble)
{
    std::ostringstream typed;
    typed << Seconds{0.125} << " " << BitsPerSecond{2.4e12};
    std::ostringstream raw;
    raw << 0.125 << " " << 2.4e12;
    EXPECT_EQ(typed.str(), raw.str());
}

TEST(Quantity, HashMatchesUnderlyingDouble)
{
    // Cache keys built from typed configs must hash like the doubles
    // they replaced.
    EXPECT_EQ(std::hash<Seconds>{}(Seconds{1.5}),
              std::hash<double>{}(1.5));
    EXPECT_EQ(std::hash<BitsPerSecond>{}(BitsPerSecond{2e11}),
              std::hash<double>{}(2e11));
}

} // namespace
} // namespace amped

/**
 * @file
 * Tests for the microbatch-efficiency curve and its fitter.
 */

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "hw/efficiency.hpp"

namespace amped {
namespace hw {
namespace {

TEST(EfficiencyTest, HyperbolicFormExactValues)
{
    MicrobatchEfficiency eff(0.8, 8.0);
    EXPECT_DOUBLE_EQ(eff(8.0), 0.4);   // a/2 at ub = b
    EXPECT_DOUBLE_EQ(eff(24.0), 0.6);  // 0.8 * 24/32
    EXPECT_NEAR(eff(8000.0), 0.8, 1e-3); // asymptote
}

TEST(EfficiencyTest, MonotonicallyIncreasingWithoutDecay)
{
    MicrobatchEfficiency eff(0.9, 16.0);
    double previous = 0.0;
    for (double ub = 1.0; ub <= 4096.0; ub *= 2.0) {
        const double value = eff(ub);
        EXPECT_GE(value, previous);
        previous = value;
    }
}

TEST(EfficiencyTest, FloorClampsSmallMicrobatches)
{
    MicrobatchEfficiency eff(0.9, 30.0, 0.25);
    EXPECT_DOUBLE_EQ(eff(1.0), 0.25);  // raw value 0.029 -> floor
    EXPECT_DOUBLE_EQ(eff(4.0), 0.25);
    EXPECT_GT(eff(64.0), 0.25);
}

TEST(EfficiencyTest, NeverExceedsOne)
{
    MicrobatchEfficiency eff(1.0, 0.001);
    EXPECT_LE(eff(1e9), 1.0);
}

TEST(EfficiencyTest, DecayReducesBeyondCriticalSize)
{
    MicrobatchEfficiency eff(0.9, 4.0);
    eff.setDecay(64.0, 0.001);
    const double at_critical = eff(64.0);
    EXPECT_LT(eff(128.0), at_critical);
    // Decay never drops below the floor / epsilon clamp.
    EXPECT_GT(eff(10000.0), 0.0);
}

TEST(EfficiencyTest, RejectsBadParameters)
{
    EXPECT_THROW(MicrobatchEfficiency(0.0, 1.0), UserError);
    EXPECT_THROW(MicrobatchEfficiency(1.5, 1.0), UserError);
    EXPECT_THROW(MicrobatchEfficiency(0.5, 0.0), UserError);
    EXPECT_THROW(MicrobatchEfficiency(0.5, 1.0, 0.6), UserError);
    EXPECT_THROW(MicrobatchEfficiency(0.5, 1.0, -0.1), UserError);
    MicrobatchEfficiency eff(0.5, 1.0);
    EXPECT_THROW(eff(0.0), UserError);
    EXPECT_THROW(eff.setDecay(0.0, 0.1), UserError);
    EXPECT_THROW(eff.setDecay(10.0, -0.1), UserError);
}

TEST(EfficiencyFitterTest, RecoversKnownCurve)
{
    EfficiencyFitter fitter;
    const MicrobatchEfficiency truth(0.85, 12.0);
    for (double ub : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0})
        fitter.addSample(ub, truth(ub));
    const auto fitted = fitter.fit();
    EXPECT_NEAR(fitted.a(), 0.85, 0.02);
    EXPECT_NEAR(fitted.b(), 12.0, 0.5);
    EXPECT_LT(fitter.lastResidual(), 1e-4);
}

TEST(EfficiencyFitterTest, FitWithNoiseStaysClose)
{
    EfficiencyFitter fitter;
    const MicrobatchEfficiency truth(0.7, 6.0);
    // Deterministic +-2 % perturbation.
    double sign = 1.0;
    for (double ub : {1.0, 3.0, 6.0, 12.0, 24.0, 48.0, 96.0}) {
        fitter.addSample(ub, truth(ub) * (1.0 + sign * 0.02));
        sign = -sign;
    }
    const auto fitted = fitter.fit();
    EXPECT_NEAR(fitted.a(), 0.7, 0.07);
    EXPECT_NEAR(fitted.b(), 6.0, 1.5);
}

TEST(EfficiencyFitterTest, RequiresTwoSamples)
{
    EfficiencyFitter fitter;
    EXPECT_THROW(fitter.fit(), UserError);
    fitter.addSample(1.0, 0.1);
    EXPECT_THROW(fitter.fit(), UserError);
    fitter.addSample(2.0, 0.2);
    EXPECT_NO_THROW(fitter.fit());
}

TEST(EfficiencyFitterTest, RejectsBadSamples)
{
    EfficiencyFitter fitter;
    EXPECT_THROW(fitter.addSample(0.0, 0.5), UserError);
    EXPECT_THROW(fitter.addSample(1.0, 0.0), UserError);
    EXPECT_THROW(fitter.addSample(1.0, 1.5), UserError);
}

TEST(EfficiencyFitterTest, FloorIsAppliedToFittedModel)
{
    EfficiencyFitter fitter;
    const MicrobatchEfficiency truth(0.9, 30.0);
    for (double ub : {1.0, 8.0, 64.0, 512.0})
        fitter.addSample(ub, truth(ub));
    const auto fitted = fitter.fit(/*floor=*/0.25);
    EXPECT_DOUBLE_EQ(fitted(1.0), 0.25);
}

/** Parameterized property: curve stays within (0, a] for all a, b. */
struct CurveParams
{
    double a, b;
};

class EfficiencyProperty
    : public ::testing::TestWithParam<CurveParams>
{};

TEST_P(EfficiencyProperty, BoundedAndIncreasing)
{
    const auto [a, b] = GetParam();
    MicrobatchEfficiency eff(a, b);
    double previous = 0.0;
    for (double ub = 1.0; ub <= 16384.0; ub *= 4.0) {
        const double value = eff(ub);
        EXPECT_GT(value, 0.0);
        EXPECT_LE(value, a + 1e-12);
        EXPECT_GE(value, previous);
        previous = value;
    }
}

INSTANTIATE_TEST_SUITE_P(
    CurveSweep, EfficiencyProperty,
    ::testing::Values(CurveParams{0.5, 1.0}, CurveParams{0.85, 12.0},
                      CurveParams{0.9, 30.0}, CurveParams{0.97, 4.0},
                      CurveParams{1.0, 100.0},
                      CurveParams{0.25, 0.5}));

} // namespace
} // namespace hw
} // namespace amped

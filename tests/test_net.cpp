/**
 * @file
 * Tests for links, topology factors, collective cost models, and
 * system configurations.
 */

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/units.hpp"
#include "net/collectives.hpp"
#include "net/link.hpp"
#include "net/system_config.hpp"

namespace amped {
namespace net {
namespace {

TEST(LinkTest, TransferTimeAndScaling)
{
    LinkConfig link{"t", Seconds{1e-6}, BitsPerSecond{1e9}};
    EXPECT_DOUBLE_EQ(link.transferTime(Bits{1e9}).value(), 1.0);
    EXPECT_DOUBLE_EQ(link.transferTime(Bits{0.0}).value(), 0.0);
    const auto doubled = link.scaledBandwidth(2.0);
    EXPECT_DOUBLE_EQ(doubled.bandwidth.value(), 2e9);
    EXPECT_DOUBLE_EQ(doubled.latency.value(), 1e-6);
    EXPECT_THROW(link.scaledBandwidth(0.0), UserError);
    EXPECT_THROW(link.transferTime(Bits{-1.0}), UserError);
}

TEST(LinkTest, ValidationCatchesBadFields)
{
    LinkConfig bad{"b", Seconds{-1.0}, BitsPerSecond{1e9}};
    EXPECT_THROW(bad.validate(), UserError);
    bad = LinkConfig{"b", Seconds{1e-6}, BitsPerSecond{0.0}};
    EXPECT_THROW(bad.validate(), UserError);
}

TEST(TopologyTest, RingAllReduceFactor)
{
    EXPECT_DOUBLE_EQ(topology::ringAllReduce(1), 0.0);
    EXPECT_DOUBLE_EQ(topology::ringAllReduce(2), 1.0);
    EXPECT_DOUBLE_EQ(topology::ringAllReduce(4), 1.5);
    EXPECT_DOUBLE_EQ(topology::ringAllReduce(8), 1.75);
    // Approaches 2 for large rings.
    EXPECT_NEAR(topology::ringAllReduce(1024), 2.0, 0.01);
    EXPECT_THROW(topology::ringAllReduce(0), UserError);
}

TEST(TopologyTest, PairwiseAllToAllFactor)
{
    EXPECT_DOUBLE_EQ(topology::pairwiseAllToAll(1), 0.0);
    EXPECT_DOUBLE_EQ(topology::pairwiseAllToAll(2), 0.5);
    EXPECT_DOUBLE_EQ(topology::pairwiseAllToAll(4), 0.75);
    EXPECT_NEAR(topology::pairwiseAllToAll(1024), 1.0, 0.01);
}

TEST(TopologyTest, TreeAllReduceFactor)
{
    EXPECT_DOUBLE_EQ(topology::treeAllReduce(1), 0.0);
    EXPECT_DOUBLE_EQ(topology::treeAllReduce(2), 1.0);
    // Tree beats ring in factor for large N.
    EXPECT_LT(topology::treeAllReduce(1024),
              topology::ringAllReduce(1024));
}

TEST(TopologyTest, BidirectionalRingHalvesTheFactor)
{
    EXPECT_DOUBLE_EQ(topology::bidirectionalRingAllReduce(8),
                     topology::ringAllReduce(8) / 2.0);
    EXPECT_DOUBLE_EQ(topology::bidirectionalRingAllReduce(1), 0.0);
}

TEST(TopologyTest, HierarchicalRingComposesDimensions)
{
    // Degenerates to the plain ring when a dimension is 1.
    EXPECT_DOUBLE_EQ(topology::hierarchicalRingAllReduce(8, 1),
                     topology::ringAllReduce(8));
    EXPECT_DOUBLE_EQ(topology::hierarchicalRingAllReduce(1, 8),
                     topology::ringAllReduce(8));
    // Identity: the 2-D composition moves exactly as much data as a
    // flat ring over all a x b ranks — hierarchy pays off only
    // because the size-a stage runs on the faster tier.
    EXPECT_DOUBLE_EQ(topology::hierarchicalRingAllReduce(4, 4),
                     topology::ringAllReduce(16));
    // Exact composition: ring(4) + ring(4)/4.
    EXPECT_DOUBLE_EQ(topology::hierarchicalRingAllReduce(4, 4),
                     1.5 + 1.5 / 4.0);
    EXPECT_THROW(topology::hierarchicalRingAllReduce(0, 4),
                 UserError);
}

TEST(CollectivesTest, AllReduceZeroForSingleRank)
{
    LinkConfig link{"t", Seconds{1e-6}, BitsPerSecond{1e12}};
    EXPECT_DOUBLE_EQ(allReduceTime(1, 1e9, Bits{16.0}, link).value(),
                     0.0);
}

TEST(CollectivesTest, AllReduceMatchesEqSixForm)
{
    LinkConfig link{"t", Seconds{2e-6}, BitsPerSecond{2.4e12}};
    const std::int64_t n = 8;
    const double elements = 1e9, bits = 16.0;
    const double factor = topology::ringAllReduce(n);
    const double expected =
        2e-6 * factor * 8.0 + elements * bits / 2.4e12 * factor;
    EXPECT_DOUBLE_EQ(allReduceTime(n, elements, Bits{bits}, link).value(),
                     expected);
}

TEST(CollectivesTest, AllReduceHonorsTopologyOverride)
{
    LinkConfig link{"t", Seconds{0.0}, BitsPerSecond{1e12}};
    const Seconds with_ring = allReduceTime(4, 1e9, Bits{16.0}, link);
    const Seconds with_override =
        allReduceTime(4, 1e9, Bits{16.0}, link, 1.0);
    EXPECT_DOUBLE_EQ(with_override / with_ring, 1.0 / 1.5);
}

TEST(CollectivesTest, AllReduceDecreasesWithBandwidth)
{
    LinkConfig slow{"s", Seconds{1e-6}, BitsPerSecond{1e11}};
    LinkConfig fast{"f", Seconds{1e-6}, BitsPerSecond{1e12}};
    EXPECT_GT(allReduceTime(8, 1e9, Bits{16.0}, slow),
              allReduceTime(8, 1e9, Bits{16.0}, fast));
}

TEST(CollectivesTest, PointToPointIsAlphaBeta)
{
    LinkConfig link{"t", Seconds{5e-6}, BitsPerSecond{1e9}};
    EXPECT_DOUBLE_EQ(pointToPointTime(1e9, Bits{1.0}, link).value(),
                     5e-6 + 1.0);
    EXPECT_DOUBLE_EQ(pointToPointTime(0.0, Bits{16.0}, link).value(),
                     5e-6);
}

TEST(CollectivesTest, AllToAllZeroForSingleNode)
{
    LinkConfig intra{"i", Seconds{1e-6}, BitsPerSecond{1e12}};
    EXPECT_DOUBLE_EQ(allToAllTime(1, 1e9, Bits{16.0}, intra,
                                  Seconds{1e-6}, BitsPerSecond{1e11})
                         .value(),
                     0.0);
}

TEST(CollectivesTest, AllToAllMatchesEqNineForm)
{
    LinkConfig intra{"i", Seconds{1e-6}, BitsPerSecond{2.4e12}};
    const std::int64_t nodes = 4;
    const double elements = 1e8, bits = 16.0;
    const double inter_lat = 1.2e-6, inter_bw = 2e11;
    const double t_moe = topology::pairwiseAllToAll(nodes);
    const double expected =
        inter_lat * t_moe * 4.0 +
        elements * bits * t_moe *
            (1.0 / (4.0 * 2.4e12) + 3.0 / (4.0 * 2e11));
    EXPECT_DOUBLE_EQ(allToAllTime(nodes, elements, Bits{bits}, intra,
                                  Seconds{inter_lat},
                                  BitsPerSecond{inter_bw})
                         .value(),
                     expected);
}

TEST(CollectivesTest, HierarchicalIsSumOfStages)
{
    LinkConfig intra{"i", Seconds{1e-6}, BitsPerSecond{2.4e12}};
    const Seconds inter_lat{1.2e-6};
    const BitsPerSecond inter_bw{2e11};
    const double elements = 1e8;
    const Bits bits{16.0};
    const Seconds total = hierarchicalAllReduceTime(
        8, 16, elements, bits, intra, inter_lat, inter_bw);
    const Seconds intra_only = allReduceTime(8, elements, bits, intra);
    const LinkConfig inter{"x", inter_lat, inter_bw};
    const Seconds inter_only =
        allReduceTime(16, elements, bits, inter);
    EXPECT_DOUBLE_EQ(total.value(), (intra_only + inter_only).value());
}

TEST(CollectivesTest, HierarchicalSingleTierDegenerates)
{
    LinkConfig intra{"i", Seconds{1e-6}, BitsPerSecond{2.4e12}};
    EXPECT_DOUBLE_EQ(hierarchicalAllReduceTime(8, 1, 1e8, Bits{16.0},
                                               intra, Seconds{1e-6},
                                               BitsPerSecond{1e11})
                         .value(),
                     allReduceTime(8, 1e8, Bits{16.0}, intra).value());
    EXPECT_DOUBLE_EQ(hierarchicalAllReduceTime(1, 1, 1e8, Bits{16.0},
                                               intra, Seconds{1e-6},
                                               BitsPerSecond{1e11})
                         .value(),
                     0.0);
}

TEST(SystemTest, TotalsAndBandwidths)
{
    auto sys = presets::a100Cluster1024();
    EXPECT_EQ(sys.totalAccelerators(), 1024);
    EXPECT_EQ(sys.numNodes, 128);
    EXPECT_DOUBLE_EQ(sys.intraBandwidth().value(), 2.4e12);
    // 8 HDR NICs * 200 Gbit/s = 1.6 Tbit/s aggregate.
    EXPECT_DOUBLE_EQ(sys.interBandwidth().value(), 1.6e12);
    // Shared by 8 accelerators -> 200 Gbit/s per stream.
    EXPECT_DOUBLE_EQ(sys.perStreamInterBandwidth().value(), 2e11);
}

TEST(SystemTest, LowEndClusterKeeps1024Accelerators)
{
    for (std::int64_t per_node : {1, 2, 4, 8}) {
        const auto sys = presets::lowEndCluster(per_node);
        EXPECT_EQ(sys.totalAccelerators(), 1024);
        EXPECT_EQ(sys.acceleratorsPerNode, per_node);
        EXPECT_EQ(sys.nicsPerNode, per_node);
        // 1 EDR NIC per accelerator -> per-stream 100 Gbit/s.
        EXPECT_DOUBLE_EQ(sys.perStreamInterBandwidth().value(),
                         units::gigabitsPerSecond(100.0));
    }
    EXPECT_THROW(presets::lowEndCluster(3), UserError);
    EXPECT_THROW(presets::lowEndCluster(0), UserError);
}

TEST(SystemTest, Hgx2Bounds)
{
    EXPECT_EQ(presets::hgx2(16).acceleratorsPerNode, 16);
    EXPECT_EQ(presets::hgx2(1).numNodes, 1);
    EXPECT_THROW(presets::hgx2(0), UserError);
    EXPECT_THROW(presets::hgx2(17), UserError);
}

TEST(SystemTest, H100ClusterMatchesCaseStudyIII)
{
    const auto sys = presets::h100Cluster3072();
    EXPECT_EQ(sys.totalAccelerators(), 3072);
    // 8 NDR NICs shared by 8 H100s: 400 Gbit/s per stream.
    EXPECT_DOUBLE_EQ(sys.perStreamInterBandwidth().value(), 4e11);
}

TEST(SystemTest, OpticalFiberLinkCarriesOffChipBandwidth)
{
    const auto fiber = presets::opticalFiber(BitsPerSecond{3.6e12});
    EXPECT_DOUBLE_EQ(fiber.bandwidth.value(), 3.6e12);
    EXPECT_LT(fiber.latency, presets::ndrInfiniband().latency);
    EXPECT_THROW(presets::opticalFiber(BitsPerSecond{0.0}), UserError);
}

TEST(SystemTest, ValidationCatchesBadFields)
{
    auto check = [](auto mutate) {
        auto bad = presets::tinyTest();
        mutate(bad);
        EXPECT_THROW(bad.validate(), UserError);
    };
    check([](SystemConfig &s) { s.numNodes = 0; });
    check([](SystemConfig &s) { s.acceleratorsPerNode = 0; });
    check([](SystemConfig &s) { s.nicsPerNode = 0; });
    check([](SystemConfig &s) {
        s.intraLink.bandwidth = BitsPerSecond{0.0};
    });
    check([](SystemConfig &s) {
        s.interLink.latency = Seconds{-1.0};
    });
}

TEST(SystemTest, InterconnectPresetBandwidthOrdering)
{
    // EDR < HDR < NDR < NVLink3 < NVLink4.
    EXPECT_LT(presets::edrInfiniband().bandwidth,
              presets::hdrInfiniband().bandwidth);
    EXPECT_LT(presets::hdrInfiniband().bandwidth,
              presets::ndrInfiniband().bandwidth);
    EXPECT_LT(presets::ndrInfiniband().bandwidth,
              presets::nvlinkA100().bandwidth);
    EXPECT_LT(presets::nvlinkA100().bandwidth,
              presets::nvlinkH100().bandwidth);
    EXPECT_LT(presets::pcie3().bandwidth,
              presets::nvlinkV100().bandwidth);
}

} // namespace
} // namespace net
} // namespace amped

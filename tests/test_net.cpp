/**
 * @file
 * Tests for links, topology factors, collective cost models, and
 * system configurations.
 */

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/units.hpp"
#include "net/collectives.hpp"
#include "net/link.hpp"
#include "net/system_config.hpp"

namespace amped {
namespace net {
namespace {

TEST(LinkTest, TransferTimeAndScaling)
{
    LinkConfig link{"t", 1e-6, 1e9};
    EXPECT_DOUBLE_EQ(link.transferTime(1e9), 1.0);
    EXPECT_DOUBLE_EQ(link.transferTime(0.0), 0.0);
    const auto doubled = link.scaledBandwidth(2.0);
    EXPECT_DOUBLE_EQ(doubled.bandwidthBits, 2e9);
    EXPECT_DOUBLE_EQ(doubled.latencySeconds, 1e-6);
    EXPECT_THROW(link.scaledBandwidth(0.0), UserError);
    EXPECT_THROW(link.transferTime(-1.0), UserError);
}

TEST(LinkTest, ValidationCatchesBadFields)
{
    LinkConfig bad{"b", -1.0, 1e9};
    EXPECT_THROW(bad.validate(), UserError);
    bad = LinkConfig{"b", 1e-6, 0.0};
    EXPECT_THROW(bad.validate(), UserError);
}

TEST(TopologyTest, RingAllReduceFactor)
{
    EXPECT_DOUBLE_EQ(topology::ringAllReduce(1), 0.0);
    EXPECT_DOUBLE_EQ(topology::ringAllReduce(2), 1.0);
    EXPECT_DOUBLE_EQ(topology::ringAllReduce(4), 1.5);
    EXPECT_DOUBLE_EQ(topology::ringAllReduce(8), 1.75);
    // Approaches 2 for large rings.
    EXPECT_NEAR(topology::ringAllReduce(1024), 2.0, 0.01);
    EXPECT_THROW(topology::ringAllReduce(0), UserError);
}

TEST(TopologyTest, PairwiseAllToAllFactor)
{
    EXPECT_DOUBLE_EQ(topology::pairwiseAllToAll(1), 0.0);
    EXPECT_DOUBLE_EQ(topology::pairwiseAllToAll(2), 0.5);
    EXPECT_DOUBLE_EQ(topology::pairwiseAllToAll(4), 0.75);
    EXPECT_NEAR(topology::pairwiseAllToAll(1024), 1.0, 0.01);
}

TEST(TopologyTest, TreeAllReduceFactor)
{
    EXPECT_DOUBLE_EQ(topology::treeAllReduce(1), 0.0);
    EXPECT_DOUBLE_EQ(topology::treeAllReduce(2), 1.0);
    // Tree beats ring in factor for large N.
    EXPECT_LT(topology::treeAllReduce(1024),
              topology::ringAllReduce(1024));
}

TEST(TopologyTest, BidirectionalRingHalvesTheFactor)
{
    EXPECT_DOUBLE_EQ(topology::bidirectionalRingAllReduce(8),
                     topology::ringAllReduce(8) / 2.0);
    EXPECT_DOUBLE_EQ(topology::bidirectionalRingAllReduce(1), 0.0);
}

TEST(TopologyTest, HierarchicalRingComposesDimensions)
{
    // Degenerates to the plain ring when a dimension is 1.
    EXPECT_DOUBLE_EQ(topology::hierarchicalRingAllReduce(8, 1),
                     topology::ringAllReduce(8));
    EXPECT_DOUBLE_EQ(topology::hierarchicalRingAllReduce(1, 8),
                     topology::ringAllReduce(8));
    // Identity: the 2-D composition moves exactly as much data as a
    // flat ring over all a x b ranks — hierarchy pays off only
    // because the size-a stage runs on the faster tier.
    EXPECT_DOUBLE_EQ(topology::hierarchicalRingAllReduce(4, 4),
                     topology::ringAllReduce(16));
    // Exact composition: ring(4) + ring(4)/4.
    EXPECT_DOUBLE_EQ(topology::hierarchicalRingAllReduce(4, 4),
                     1.5 + 1.5 / 4.0);
    EXPECT_THROW(topology::hierarchicalRingAllReduce(0, 4),
                 UserError);
}

TEST(CollectivesTest, AllReduceZeroForSingleRank)
{
    LinkConfig link{"t", 1e-6, 1e12};
    EXPECT_DOUBLE_EQ(allReduceTime(1, 1e9, 16.0, link), 0.0);
}

TEST(CollectivesTest, AllReduceMatchesEqSixForm)
{
    LinkConfig link{"t", 2e-6, 2.4e12};
    const std::int64_t n = 8;
    const double elements = 1e9, bits = 16.0;
    const double factor = topology::ringAllReduce(n);
    const double expected =
        2e-6 * factor * 8.0 + elements * bits / 2.4e12 * factor;
    EXPECT_DOUBLE_EQ(allReduceTime(n, elements, bits, link), expected);
}

TEST(CollectivesTest, AllReduceHonorsTopologyOverride)
{
    LinkConfig link{"t", 0.0, 1e12};
    const double with_ring = allReduceTime(4, 1e9, 16.0, link);
    const double with_override =
        allReduceTime(4, 1e9, 16.0, link, 1.0);
    EXPECT_DOUBLE_EQ(with_override / with_ring, 1.0 / 1.5);
}

TEST(CollectivesTest, AllReduceDecreasesWithBandwidth)
{
    LinkConfig slow{"s", 1e-6, 1e11};
    LinkConfig fast{"f", 1e-6, 1e12};
    EXPECT_GT(allReduceTime(8, 1e9, 16.0, slow),
              allReduceTime(8, 1e9, 16.0, fast));
}

TEST(CollectivesTest, PointToPointIsAlphaBeta)
{
    LinkConfig link{"t", 5e-6, 1e9};
    EXPECT_DOUBLE_EQ(pointToPointTime(1e9, 1.0, link), 5e-6 + 1.0);
    EXPECT_DOUBLE_EQ(pointToPointTime(0.0, 16.0, link), 5e-6);
}

TEST(CollectivesTest, AllToAllZeroForSingleNode)
{
    LinkConfig intra{"i", 1e-6, 1e12};
    EXPECT_DOUBLE_EQ(allToAllTime(1, 1e9, 16.0, intra, 1e-6, 1e11),
                     0.0);
}

TEST(CollectivesTest, AllToAllMatchesEqNineForm)
{
    LinkConfig intra{"i", 1e-6, 2.4e12};
    const std::int64_t nodes = 4;
    const double elements = 1e8, bits = 16.0;
    const double inter_lat = 1.2e-6, inter_bw = 2e11;
    const double t_moe = topology::pairwiseAllToAll(nodes);
    const double expected =
        inter_lat * t_moe * 4.0 +
        elements * bits * t_moe *
            (1.0 / (4.0 * 2.4e12) + 3.0 / (4.0 * 2e11));
    EXPECT_DOUBLE_EQ(
        allToAllTime(nodes, elements, bits, intra, inter_lat, inter_bw),
        expected);
}

TEST(CollectivesTest, HierarchicalIsSumOfStages)
{
    LinkConfig intra{"i", 1e-6, 2.4e12};
    const double inter_lat = 1.2e-6, inter_bw = 2e11;
    const double elements = 1e8, bits = 16.0;
    const double total = hierarchicalAllReduceTime(
        8, 16, elements, bits, intra, inter_lat, inter_bw);
    const double intra_only = allReduceTime(8, elements, bits, intra);
    const LinkConfig inter{"x", inter_lat, inter_bw};
    const double inter_only =
        allReduceTime(16, elements, bits, inter);
    EXPECT_DOUBLE_EQ(total, intra_only + inter_only);
}

TEST(CollectivesTest, HierarchicalSingleTierDegenerates)
{
    LinkConfig intra{"i", 1e-6, 2.4e12};
    EXPECT_DOUBLE_EQ(
        hierarchicalAllReduceTime(8, 1, 1e8, 16.0, intra, 1e-6, 1e11),
        allReduceTime(8, 1e8, 16.0, intra));
    EXPECT_DOUBLE_EQ(
        hierarchicalAllReduceTime(1, 1, 1e8, 16.0, intra, 1e-6, 1e11),
        0.0);
}

TEST(SystemTest, TotalsAndBandwidths)
{
    auto sys = presets::a100Cluster1024();
    EXPECT_EQ(sys.totalAccelerators(), 1024);
    EXPECT_EQ(sys.numNodes, 128);
    EXPECT_DOUBLE_EQ(sys.intraBandwidthBits(), 2.4e12);
    // 8 HDR NICs * 200 Gbit/s = 1.6 Tbit/s aggregate.
    EXPECT_DOUBLE_EQ(sys.interBandwidthBits(), 1.6e12);
    // Shared by 8 accelerators -> 200 Gbit/s per stream.
    EXPECT_DOUBLE_EQ(sys.perStreamInterBandwidthBits(), 2e11);
}

TEST(SystemTest, LowEndClusterKeeps1024Accelerators)
{
    for (std::int64_t per_node : {1, 2, 4, 8}) {
        const auto sys = presets::lowEndCluster(per_node);
        EXPECT_EQ(sys.totalAccelerators(), 1024);
        EXPECT_EQ(sys.acceleratorsPerNode, per_node);
        EXPECT_EQ(sys.nicsPerNode, per_node);
        // 1 EDR NIC per accelerator -> per-stream 100 Gbit/s.
        EXPECT_DOUBLE_EQ(sys.perStreamInterBandwidthBits(),
                         units::gigabitsPerSecond(100.0));
    }
    EXPECT_THROW(presets::lowEndCluster(3), UserError);
    EXPECT_THROW(presets::lowEndCluster(0), UserError);
}

TEST(SystemTest, Hgx2Bounds)
{
    EXPECT_EQ(presets::hgx2(16).acceleratorsPerNode, 16);
    EXPECT_EQ(presets::hgx2(1).numNodes, 1);
    EXPECT_THROW(presets::hgx2(0), UserError);
    EXPECT_THROW(presets::hgx2(17), UserError);
}

TEST(SystemTest, H100ClusterMatchesCaseStudyIII)
{
    const auto sys = presets::h100Cluster3072();
    EXPECT_EQ(sys.totalAccelerators(), 3072);
    // 8 NDR NICs shared by 8 H100s: 400 Gbit/s per stream.
    EXPECT_DOUBLE_EQ(sys.perStreamInterBandwidthBits(), 4e11);
}

TEST(SystemTest, OpticalFiberLinkCarriesOffChipBandwidth)
{
    const auto fiber = presets::opticalFiber(3.6e12);
    EXPECT_DOUBLE_EQ(fiber.bandwidthBits, 3.6e12);
    EXPECT_LT(fiber.latencySeconds,
              presets::ndrInfiniband().latencySeconds);
    EXPECT_THROW(presets::opticalFiber(0.0), UserError);
}

TEST(SystemTest, ValidationCatchesBadFields)
{
    auto check = [](auto mutate) {
        auto bad = presets::tinyTest();
        mutate(bad);
        EXPECT_THROW(bad.validate(), UserError);
    };
    check([](SystemConfig &s) { s.numNodes = 0; });
    check([](SystemConfig &s) { s.acceleratorsPerNode = 0; });
    check([](SystemConfig &s) { s.nicsPerNode = 0; });
    check([](SystemConfig &s) { s.intraLink.bandwidthBits = 0.0; });
    check([](SystemConfig &s) { s.interLink.latencySeconds = -1.0; });
}

TEST(SystemTest, InterconnectPresetBandwidthOrdering)
{
    // EDR < HDR < NDR < NVLink3 < NVLink4.
    EXPECT_LT(presets::edrInfiniband().bandwidthBits,
              presets::hdrInfiniband().bandwidthBits);
    EXPECT_LT(presets::hdrInfiniband().bandwidthBits,
              presets::ndrInfiniband().bandwidthBits);
    EXPECT_LT(presets::ndrInfiniband().bandwidthBits,
              presets::nvlinkA100().bandwidthBits);
    EXPECT_LT(presets::nvlinkA100().bandwidthBits,
              presets::nvlinkH100().bandwidthBits);
    EXPECT_LT(presets::pcie3().bandwidthBits,
              presets::nvlinkV100().bandwidthBits);
}

} // namespace
} // namespace net
} // namespace amped

/**
 * @file
 * Tests for the training-energy model (Case Study II's energy
 * discussion).
 */

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/energy_model.hpp"

namespace amped {
namespace core {
namespace {

/** Builds a result with given totals (seconds). */
EvaluationResult
resultWith(double time_per_batch, double bubble, double num_batches)
{
    EvaluationResult r;
    r.perBatch.computeForward = time_per_batch - bubble;
    r.perBatch.bubble = bubble;
    r.timePerBatch = time_per_batch;
    r.numBatches = num_batches;
    r.totalTime = time_per_batch * num_batches;
    return r;
}

TEST(EnergyModelTest, BusyOnlyRunDrawsTdp)
{
    EnergyModel energy(PowerSpec{Watts{400.0}, 0.3});
    const auto r = resultWith(10.0, 0.0, 100.0);
    EXPECT_DOUBLE_EQ(energy.energyPerBatchJoules(r, 1).value(), 4000.0);
    EXPECT_DOUBLE_EQ(energy.trainingEnergyJoules(r, 1).value(), 400000.0);
    EXPECT_DOUBLE_EQ(energy.averagePowerWatts(r).value(), 400.0);
}

TEST(EnergyModelTest, BubblesDrawIdlePower)
{
    EnergyModel energy(PowerSpec{Watts{400.0}, 0.25});
    // Half the batch is bubble.
    const auto r = resultWith(10.0, 5.0, 1.0);
    // 5 s x 400 W + 5 s x 100 W = 2500 J.
    EXPECT_DOUBLE_EQ(energy.energyPerBatchJoules(r, 1).value(), 2500.0);
    EXPECT_DOUBLE_EQ(energy.averagePowerWatts(r).value(), 250.0);
}

TEST(EnergyModelTest, EnergyScalesWithWorkers)
{
    EnergyModel energy(PowerSpec{Watts{400.0}, 0.3});
    const auto r = resultWith(10.0, 2.0, 1.0);
    EXPECT_DOUBLE_EQ(energy.energyPerBatchJoules(r, 8).value(),
                     (8.0 * energy.energyPerBatchJoules(r, 1)).value());
    EXPECT_THROW(energy.energyPerBatchJoules(r, 0), UserError);
}

TEST(EnergyModelTest, BreakEvenMatchesPaperScenario)
{
    // Paper Sec. VII: the PP configuration takes ~4 % longer with
    // ~11 % bubbles; it wins on energy when idle power is below
    // ~30 % of full power.
    const double ref_time = 100.0;
    const auto reference = resultWith(ref_time, 0.0, 1.0);
    const double pp_time = 104.0;                  // 4 % longer
    const double pp_bubble = 0.11 * pp_time;       // 11 % idle
    const auto bubbly = resultWith(pp_time, pp_bubble, 1.0);

    const double f =
        EnergyModel::breakEvenIdleFraction(bubbly, reference);
    // busy_r - busy_b = 100 - 92.56 = 7.44; idle delta 11.44:
    // f = 0.65... the paper's rougher estimate said ~0.3 with its
    // own (unpublished) numbers; the mechanism is the same — check
    // the closed form exactly.
    EXPECT_NEAR(f, (100.0 - (104.0 - pp_bubble)) / pp_bubble, 1e-12);
    EXPECT_GT(f, 0.0);
    EXPECT_LT(f, 1.0);

    // Below break-even, the bubbly config uses less energy.
    EnergyModel cheap_idle(PowerSpec{Watts{400.0}, f - 0.05});
    EXPECT_LT(cheap_idle.trainingEnergyJoules(bubbly, 1),
              cheap_idle.trainingEnergyJoules(reference, 1));
    // Above it, more.
    EnergyModel dear_idle(PowerSpec{Watts{400.0}, f + 0.05});
    EXPECT_GT(dear_idle.trainingEnergyJoules(bubbly, 1),
              dear_idle.trainingEnergyJoules(reference, 1));
}

TEST(EnergyModelTest, BreakEvenDegenerateCases)
{
    // "Bubbly" config is strictly better busy-wise and idles less:
    // wins regardless of idle power.
    const auto fast = resultWith(90.0, 0.0, 1.0);
    const auto slow = resultWith(100.0, 0.0, 1.0);
    EXPECT_DOUBLE_EQ(EnergyModel::breakEvenIdleFraction(fast, slow),
                     1.0);
    // Busier and longer: can never win.
    EXPECT_DOUBLE_EQ(EnergyModel::breakEvenIdleFraction(slow, fast),
                     0.0);
}

TEST(EnergyModelTest, SpecValidation)
{
    EXPECT_THROW(EnergyModel(PowerSpec{Watts{0.0}, 0.3}), UserError);
    EXPECT_THROW(EnergyModel(PowerSpec{Watts{400.0}, -0.1}), UserError);
    EXPECT_THROW(EnergyModel(PowerSpec{Watts{400.0}, 1.5}), UserError);
    EXPECT_NO_THROW(EnergyModel(PowerSpec{Watts{400.0}, 0.0}));
}

} // namespace
} // namespace core
} // namespace amped

/**
 * @file
 * Tests for the command-line option parser.
 */

#include <gtest/gtest.h>

#include "common/arg_parser.hpp"
#include "common/error.hpp"

namespace amped {
namespace {

ArgParser
makeParser()
{
    ArgParser parser;
    parser.addOption("batch", "global batch size", "8192");
    parser.addOption("model", "model preset", "145b");
    parser.addFlag("csv", "emit csv");
    return parser;
}

TEST(ArgParserTest, DefaultsApplyWhenAbsent)
{
    auto parser = makeParser();
    parser.parse({});
    EXPECT_EQ(parser.get("batch"), "8192");
    EXPECT_DOUBLE_EQ(parser.getDouble("batch"), 8192.0);
    EXPECT_EQ(parser.getInt("batch"), 8192);
    EXPECT_FALSE(parser.getFlag("csv"));
    EXPECT_FALSE(parser.wasProvided("batch"));
}

TEST(ArgParserTest, ParsesOptionsAndFlags)
{
    auto parser = makeParser();
    parser.parse({"--batch", "1024", "--csv", "--model", "gpt3"});
    EXPECT_EQ(parser.getInt("batch"), 1024);
    EXPECT_EQ(parser.get("model"), "gpt3");
    EXPECT_TRUE(parser.getFlag("csv"));
    EXPECT_TRUE(parser.wasProvided("batch"));
    EXPECT_TRUE(parser.wasProvided("csv"));
}

TEST(ArgParserTest, ScientificNotationDoubles)
{
    auto parser = makeParser();
    parser.parse({"--batch", "3e2"});
    EXPECT_DOUBLE_EQ(parser.getDouble("batch"), 300.0);
    // But it is not an integer.
    EXPECT_THROW(parser.getInt("batch"), UserError);
}

TEST(ArgParserTest, RejectsUnknownAndMalformed)
{
    auto parser = makeParser();
    EXPECT_THROW(parser.parse({"--nope", "1"}), UserError);
    EXPECT_THROW(parser.parse({"positional"}), UserError);
    EXPECT_THROW(parser.parse({"--batch"}), UserError); // no value
}

TEST(ArgParserTest, RejectsNonNumericValues)
{
    auto parser = makeParser();
    parser.parse({"--batch", "abc"});
    EXPECT_THROW(parser.getDouble("batch"), UserError);
    EXPECT_THROW(parser.getInt("batch"), UserError);
    EXPECT_EQ(parser.get("batch"), "abc"); // string access still fine
}

TEST(ArgParserTest, RejectsDuplicateDeclarations)
{
    ArgParser parser;
    parser.addOption("x", "d", "1");
    EXPECT_THROW(parser.addOption("x", "dup", "2"), UserError);
    EXPECT_THROW(parser.addFlag("x", "dup"), UserError);
}

TEST(ArgParserTest, UndeclaredAccessIsAnError)
{
    auto parser = makeParser();
    parser.parse({});
    EXPECT_THROW(parser.get("missing"), UserError);
    EXPECT_THROW(parser.getFlag("missing"), UserError);
}

/** Runs @p fn, returning the UserError text it must throw. */
template <typename Fn>
std::string
diagnosticOf(Fn &&fn)
{
    try {
        fn();
    } catch (const UserError &error) {
        return error.what();
    }
    ADD_FAILURE() << "expected a UserError";
    return "";
}

TEST(ArgParserTest, DiagnosticsNameTheProblem)
{
    auto parser = makeParser();

    const auto unknown =
        diagnosticOf([&] { parser.parse({"--nope", "1"}); });
    EXPECT_NE(unknown.find("unknown option --nope"),
              std::string::npos)
        << unknown;
    // The unknown-option message embeds the help text so the user
    // sees what *is* accepted.
    EXPECT_NE(unknown.find("--batch"), std::string::npos) << unknown;

    EXPECT_NE(diagnosticOf([&] { parser.parse({"--batch"}); })
                  .find("option --batch needs a value"),
              std::string::npos);

    EXPECT_NE(
        diagnosticOf([&] { parser.parse({"positional"}); })
            .find("expected an option starting with --, got "
                  "'positional'"),
        std::string::npos);

    parser.parse({"--batch", "abc"});
    EXPECT_NE(diagnosticOf([&] { parser.getDouble("batch"); })
                  .find("option --batch: 'abc' is not a number"),
              std::string::npos);

    parser.parse({"--batch", "3e2"});
    EXPECT_NE(diagnosticOf([&] { parser.getInt("batch"); })
                  .find("option --batch: '3e2' is not an integer"),
              std::string::npos);
}

TEST(ArgParserTest, HelpTextListsEverything)
{
    const auto parser = makeParser();
    const std::string help = parser.helpText();
    EXPECT_NE(help.find("--batch"), std::string::npos);
    EXPECT_NE(help.find("--model"), std::string::npos);
    EXPECT_NE(help.find("--csv"), std::string::npos);
    EXPECT_NE(help.find("default: 8192"), std::string::npos);
}

} // namespace
} // namespace amped

/**
 * @file
 * Tests for pipeline-schedule models and their integration with the
 * evaluator options.
 */

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/options.hpp"
#include "core/pipeline_schedule.hpp"

namespace amped {
namespace core {
namespace {

TEST(PipelineScheduleTest, NamesAreDescriptive)
{
    PipelineSchedule gpipe;
    EXPECT_EQ(gpipe.name(), "GPipe");
    PipelineSchedule ofob;
    ofob.kind = PipelineScheduleKind::oneFOneB;
    EXPECT_EQ(ofob.name(), "1F1B");
    PipelineSchedule inter;
    inter.kind = PipelineScheduleKind::interleaved;
    inter.interleaveDegree = 4;
    EXPECT_EQ(inter.name(), "interleaved-1F1B(v=4)");
}

TEST(PipelineScheduleTest, BubbleRatioShrinksWithInterleaving)
{
    PipelineSchedule gpipe;
    EXPECT_DOUBLE_EQ(gpipe.bubbleOverlapRatio(), 1.0);
    PipelineSchedule ofob;
    ofob.kind = PipelineScheduleKind::oneFOneB;
    EXPECT_DOUBLE_EQ(ofob.bubbleOverlapRatio(), 1.0);
    PipelineSchedule inter;
    inter.kind = PipelineScheduleKind::interleaved;
    inter.interleaveDegree = 4;
    EXPECT_DOUBLE_EQ(inter.bubbleOverlapRatio(), 0.25);
}

TEST(PipelineScheduleTest, InterleavingCostsPipelineTraffic)
{
    PipelineSchedule inter;
    inter.kind = PipelineScheduleKind::interleaved;
    inter.interleaveDegree = 4;
    EXPECT_DOUBLE_EQ(inter.ppCommMultiplier(), 4.0);
    PipelineSchedule gpipe;
    EXPECT_DOUBLE_EQ(gpipe.ppCommMultiplier(), 1.0);
}

TEST(PipelineScheduleTest, ActivationResidencyPerSchedule)
{
    PipelineSchedule gpipe;
    PipelineSchedule ofob;
    ofob.kind = PipelineScheduleKind::oneFOneB;

    // 8 stages, 64 microbatches.
    EXPECT_DOUBLE_EQ(gpipe.activationsInFlight(8, 64.0), 64.0);
    EXPECT_DOUBLE_EQ(ofob.activationsInFlight(8, 64.0), 8.0);
    // With few microbatches, residency is capped by N_ub.
    EXPECT_DOUBLE_EQ(ofob.activationsInFlight(8, 4.0), 4.0);
    // No pipeline -> one microbatch in flight.
    EXPECT_DOUBLE_EQ(gpipe.activationsInFlight(1, 64.0), 1.0);

    PipelineSchedule inter;
    inter.kind = PipelineScheduleKind::interleaved;
    inter.interleaveDegree = 2;
    const double residency = inter.activationsInFlight(8, 64.0);
    EXPECT_GT(residency, 8.0);  // more than plain 1F1B
    EXPECT_LT(residency, 64.0); // far less than GPipe
}

TEST(PipelineScheduleTest, ValidationRejectsBadDegrees)
{
    PipelineSchedule bad;
    bad.interleaveDegree = 0;
    EXPECT_THROW(bad.validate(), UserError);
    PipelineSchedule gpipe_with_degree;
    gpipe_with_degree.interleaveDegree = 2; // only interleaved takes v
    EXPECT_THROW(gpipe_with_degree.validate(), UserError);
    PipelineSchedule inter;
    inter.kind = PipelineScheduleKind::interleaved;
    inter.interleaveDegree = 2;
    EXPECT_NO_THROW(inter.validate());
    EXPECT_THROW(inter.activationsInFlight(0, 4.0), UserError);
    EXPECT_THROW(inter.activationsInFlight(4, 0.5), UserError);
}

TEST(PipelineScheduleTest, ApplyScheduleSetsOptions)
{
    ModelOptions options;
    PipelineSchedule inter;
    inter.kind = PipelineScheduleKind::interleaved;
    inter.interleaveDegree = 4;
    applySchedule(inter, options);
    EXPECT_DOUBLE_EQ(options.bubbleOverlapRatio, 0.25);
    EXPECT_DOUBLE_EQ(options.ppCommMultiplier, 4.0);
}

} // namespace
} // namespace core
} // namespace amped

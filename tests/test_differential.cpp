/**
 * @file
 * Differential tests: the analytical model (core::AmpedModel) and
 * the discrete-event training simulator (sim::TrainingSimulator) are
 * evaluated over a shared grid of parallelism degrees x model sizes
 * and must agree — per point within a documented tolerance on the
 * step-time ratio, and in aggregate on the *shape* of each curve
 * (identical ranking of configurations, monotone where the schedule
 * is genuinely monotone).
 *
 * Tolerance notes (empirical, RelWithDebInfo on the dev container):
 *  - DP:    the analytic all-reduce term and the simulated chunked
 *           ring agree within ~2 %; tolerance 6 %.
 *  - GPipe: the analytic bubble over/underestimates the fill/drain
 *           interaction depending on stage count (see
 *           test_sim_2d.cpp); observed <= ~12 %, tolerance 14 %.
 *  - TP:    the analytic per-layer all-reduce vs the simulated ring
 *           schedule differ most (the simulator serializes the two
 *           activation all-reduces); tolerance 15 %.
 *  - DPxPP: combined 2-D schedule, tolerance 8 %.
 * A deliberate convention mismatch (backward multiplier 2 instead of
 * the recompute convention's 3) must push DP and GPipe outside these
 * bands — DifferentialSensitivity below pins that.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "core/amped_model.hpp"
#include "hw/presets.hpp"
#include "model/presets.hpp"
#include "net/system_config.hpp"
#include "sim/training_sim.hpp"
#include "validate/calibrations.hpp"

namespace amped {
namespace {

/** One point of the shared grid: both predictions for one config. */
struct GridPoint
{
    std::string label;
    double analytic = 0.0; ///< AMPeD time per batch (s).
    double simulated = 0.0; ///< DES step time (s).

    double ratio() const { return analytic / simulated; }
};

/** Shared efficiency calibration for the minGPT-class grids. */
hw::MicrobatchEfficiency
gridEfficiency()
{
    return validate::calibrations::minGptHgx2();
}

/** Analytic time-per-batch for one mapping on an HGX-2-like node. */
double
analyticStep(const model::TransformerConfig &model_cfg,
             std::int64_t devices,
             const mapping::ParallelismConfig &mapping, double batch)
{
    core::AmpedModel model(model_cfg, hw::presets::v100Sxm3(),
                           gridEfficiency(), net::presets::hgx2(devices),
                           validate::calibrations::nvswitchOptions(devices));
    core::TrainingJob job;
    job.batchSize = batch;
    job.numBatchesOverride = 1.0;
    return model.evaluate(mapping, job).timePerBatch;
}

/** Simulator over the same device pool and calibration. */
sim::TrainingSimulator
makeSimulator(const model::TransformerConfig &model_cfg,
              double backward_multiplier = 3.0)
{
    sim::TrainingSimulator simulator(model_cfg,
                                     hw::presets::v100Sxm3(),
                                     gridEfficiency(),
                                     net::presets::nvlinkV100());
    // Match the analytic recompute convention (backward = 3x fwd).
    simulator.setBackwardMultiplier(backward_multiplier);
    return simulator;
}

/** The model sizes the grids sweep (small and deep variants). */
const std::vector<model::TransformerConfig> &
gridModels()
{
    static const std::vector<model::TransformerConfig> models = {
        model::presets::minGpt85M(),
        model::presets::minGptPipeline(),
    };
    return models;
}

std::vector<GridPoint>
dataParallelGrid(const model::TransformerConfig &model_cfg,
                 double backward_multiplier = 3.0)
{
    const double per_device_batch = 32.0;
    const auto simulator =
        makeSimulator(model_cfg, backward_multiplier);
    std::vector<GridPoint> grid;
    for (std::int64_t devices : {2, 4, 8, 16}) {
        GridPoint point;
        point.label = "DP" + std::to_string(devices);
        point.analytic = analyticStep(
            model_cfg, devices,
            mapping::makeMapping(1, 1, devices, 1, 1, 1),
            per_device_batch * static_cast<double>(devices));
        point.simulated =
            simulator
                .simulateDataParallelStep(devices, per_device_batch)
                .stepTime;
        grid.push_back(point);
    }
    return grid;
}

std::vector<GridPoint>
pipelineGrid(const model::TransformerConfig &model_cfg,
             double backward_multiplier = 3.0)
{
    const double microbatch = 8.0;
    const auto simulator =
        makeSimulator(model_cfg, backward_multiplier);
    std::vector<GridPoint> grid;
    for (std::int64_t stages : {2, 4, 8}) {
        for (std::int64_t n_ub : {8, 32}) {
            GridPoint point;
            point.label = "PP" + std::to_string(stages) + "/ub" +
                          std::to_string(n_ub);
            point.analytic = analyticStep(
                model_cfg, stages,
                mapping::makeMapping(1, stages, 1, 1, 1, 1),
                microbatch * static_cast<double>(n_ub));
            point.simulated =
                simulator.simulateGPipeStep(stages, microbatch, n_ub)
                    .stepTime;
            grid.push_back(point);
        }
    }
    return grid;
}

std::vector<GridPoint>
tensorParallelGrid(const model::TransformerConfig &model_cfg)
{
    const double batch = 32.0;
    const auto simulator = makeSimulator(model_cfg);
    std::vector<GridPoint> grid;
    for (std::int64_t devices : {2, 4, 8}) {
        GridPoint point;
        point.label = "TP" + std::to_string(devices);
        point.analytic = analyticStep(
            model_cfg, devices,
            mapping::makeMapping(devices, 1, 1, 1, 1, 1), batch);
        point.simulated =
            simulator.simulateTensorParallelStep(devices, batch)
                .stepTime;
        grid.push_back(point);
    }
    return grid;
}

std::vector<GridPoint>
dataPipelineGrid(const model::TransformerConfig &model_cfg)
{
    const double microbatch = 8.0;
    const std::int64_t n_ub = 4;
    auto simulator = makeSimulator(model_cfg);
    simulator.setGradientBits(Bits{16.0});
    std::vector<GridPoint> grid;
    for (const auto &[replicas, stages] :
         std::vector<std::pair<std::int64_t, std::int64_t>>{
             {2, 2}, {2, 4}, {4, 2}}) {
        GridPoint point;
        point.label = "DP" + std::to_string(replicas) + "xPP" +
                      std::to_string(stages);
        core::ModelOptions options =
            validate::calibrations::validationOptions();
        options.gradientBits = Bits{16.0};
        core::AmpedModel model(model_cfg, hw::presets::v100Sxm3(),
                               gridEfficiency(),
                               net::presets::hgx2(replicas * stages),
                               options);
        core::TrainingJob job;
        job.batchSize = microbatch *
                        static_cast<double>(replicas * n_ub);
        job.numBatchesOverride = 1.0;
        point.analytic =
            model
                .evaluate(mapping::makeMapping(1, stages, replicas,
                                               1, 1, 1),
                          job)
                .timePerBatch;
        point.simulated = simulator
                              .simulateDataPipelineStep(
                                  replicas, stages, microbatch, n_ub,
                                  net::presets::nvlinkV100())
                              .stepTime;
        grid.push_back(point);
    }
    return grid;
}

/** Per-point tolerance: |analytic/sim - 1| <= tol, with context. */
void
expectPointwiseAgreement(const std::vector<GridPoint> &grid,
                         double tol)
{
    for (const auto &point : grid) {
        SCOPED_TRACE(point.label + ": analytic " +
                     std::to_string(point.analytic) + " s, sim " +
                     std::to_string(point.simulated) + " s");
        ASSERT_GT(point.simulated, 0.0);
        EXPECT_NEAR(point.ratio(), 1.0, tol);
    }
}

/**
 * Shape agreement: ranking the grid by analytic time and by
 * simulated time must give the same permutation — the models agree
 * on *which* configuration is faster even where the absolute times
 * drift.
 */
void
expectSameRanking(const std::vector<GridPoint> &grid)
{
    std::vector<std::size_t> by_analytic(grid.size());
    std::vector<std::size_t> by_sim(grid.size());
    std::iota(by_analytic.begin(), by_analytic.end(), 0u);
    std::iota(by_sim.begin(), by_sim.end(), 0u);
    std::sort(by_analytic.begin(), by_analytic.end(),
              [&grid](std::size_t a, std::size_t b) {
                  return grid[a].analytic < grid[b].analytic;
              });
    std::sort(by_sim.begin(), by_sim.end(),
              [&grid](std::size_t a, std::size_t b) {
                  return grid[a].simulated < grid[b].simulated;
              });
    for (std::size_t i = 0; i < grid.size(); ++i) {
        EXPECT_EQ(by_analytic[i], by_sim[i])
            << "rank " << i << ": analytic says "
            << grid[by_analytic[i]].label << ", simulator says "
            << grid[by_sim[i]].label;
    }
}

constexpr double kDpTol = 0.06;
constexpr double kPpTol = 0.14;
constexpr double kTpTol = 0.15;
constexpr double kDpPpTol = 0.08;

TEST(DifferentialGrid, DataParallelPointwise)
{
    for (const auto &model_cfg : gridModels()) {
        SCOPED_TRACE(model_cfg.name);
        expectPointwiseAgreement(dataParallelGrid(model_cfg), kDpTol);
    }
}

TEST(DifferentialGrid, DataParallelShape)
{
    for (const auto &model_cfg : gridModels()) {
        SCOPED_TRACE(model_cfg.name);
        const auto grid = dataParallelGrid(model_cfg);
        expectSameRanking(grid);
        // At a fixed per-device batch, adding replicas only adds
        // all-reduce: the step time is strictly increasing in the
        // device count — in both models.
        for (std::size_t i = 1; i < grid.size(); ++i) {
            EXPECT_GT(grid[i].analytic, grid[i - 1].analytic)
                << grid[i].label;
            EXPECT_GT(grid[i].simulated, grid[i - 1].simulated)
                << grid[i].label;
        }
    }
}

TEST(DifferentialGrid, PipelinePointwise)
{
    for (const auto &model_cfg : gridModels()) {
        SCOPED_TRACE(model_cfg.name);
        expectPointwiseAgreement(pipelineGrid(model_cfg), kPpTol);
    }
}

TEST(DifferentialGrid, PipelineShape)
{
    for (const auto &model_cfg : gridModels()) {
        SCOPED_TRACE(model_cfg.name);
        const auto grid = pipelineGrid(model_cfg);
        // More microbatches at the same stage count lengthen the
        // step in both models (grid order: (stages, n_ub) pairs
        // with n_ub inner).
        for (std::size_t i = 0; i + 1 < grid.size(); i += 2) {
            EXPECT_GT(grid[i + 1].analytic, grid[i].analytic)
                << grid[i + 1].label;
            EXPECT_GT(grid[i + 1].simulated, grid[i].simulated)
                << grid[i + 1].label;
        }
    }
}

TEST(DifferentialGrid, TensorParallelPointwise)
{
    for (const auto &model_cfg : gridModels()) {
        SCOPED_TRACE(model_cfg.name);
        const auto grid = tensorParallelGrid(model_cfg);
        expectPointwiseAgreement(grid, kTpTol);
        expectSameRanking(grid);
    }
}

TEST(DifferentialGrid, DataPipelinePointwise)
{
    for (const auto &model_cfg : gridModels()) {
        SCOPED_TRACE(model_cfg.name);
        expectPointwiseAgreement(dataPipelineGrid(model_cfg),
                                 kDpPpTol);
    }
}

/**
 * The tolerances above have teeth: simulating with backward = 2x
 * forward while the analytic side keeps the recompute convention
 * (3x) shifts every compute-bound point by ~20 % — far outside the
 * DP and PP bands.  If this test starts failing the differential
 * suite has gone numb (tolerances widened too far to catch a real
 * modeling change).
 */
TEST(DifferentialSensitivity, ConventionMismatchIsDetected)
{
    const auto &model_cfg = gridModels().front();
    const auto dp = dataParallelGrid(model_cfg, 2.0);
    const auto pp = pipelineGrid(model_cfg, 2.0);
    double max_dp_err = 0.0, max_pp_err = 0.0;
    for (const auto &point : dp)
        max_dp_err =
            std::max(max_dp_err, std::abs(point.ratio() - 1.0));
    for (const auto &point : pp)
        max_pp_err =
            std::max(max_pp_err, std::abs(point.ratio() - 1.0));
    EXPECT_GT(max_dp_err, kDpTol);
    EXPECT_GT(max_pp_err, kPpTol);
}

} // namespace
} // namespace amped

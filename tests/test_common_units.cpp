/**
 * @file
 * Tests for unit conversions and adaptive formatting.
 */

#include <gtest/gtest.h>

#include "common/units.hpp"

namespace amped {
namespace units {
namespace {

TEST(UnitsTest, BandwidthConversions)
{
    EXPECT_DOUBLE_EQ(gigabytesPerSecond(1.0), 8e9);
    EXPECT_DOUBLE_EQ(gigabitsPerSecond(100.0), 1e11);
    // 300 GB/s NVLink2 = 2.4 Tbit/s.
    EXPECT_DOUBLE_EQ(gigabytesPerSecond(300.0), 2.4e12);
}

TEST(UnitsTest, DurationFormatsPickAdaptiveUnit)
{
    EXPECT_EQ(formatDuration(5e-9), "5 ns");
    EXPECT_EQ(formatDuration(5e-6), "5 us");
    EXPECT_EQ(formatDuration(5e-3), "5 ms");
    EXPECT_EQ(formatDuration(5.0), "5 s");
    EXPECT_EQ(formatDuration(120.0), "2 min");
    EXPECT_EQ(formatDuration(7200.0), "2 hours");
    EXPECT_EQ(formatDuration(2.0 * day), "2 days");
}

TEST(UnitsTest, FlopsFormatsScaleCorrectly)
{
    EXPECT_EQ(formatFlops(312e12), "312.0 TFLOP/s");
    EXPECT_EQ(formatFlops(1.5e15), "1.5 PFLOP/s");
    EXPECT_EQ(formatFlops(2e9), "2.0 GFLOP/s");
}

TEST(UnitsTest, BandwidthFormats)
{
    EXPECT_EQ(formatBandwidth(2.4e12), "2.40 Tbit/s");
    EXPECT_EQ(formatBandwidth(1e11), "100.00 Gbit/s");
    EXPECT_EQ(formatBandwidth(5e6), "5.00 Mbit/s");
}

TEST(UnitsTest, CountFormats)
{
    EXPECT_EQ(formatCount(1.45e11), "145.0 G");
    EXPECT_EQ(formatCount(1e12), "1.0 T");
    EXPECT_EQ(formatCount(2500.0), "2.5 K");
    EXPECT_EQ(formatCount(12.0), "12");
}

TEST(UnitsTest, FormatFixedControlsDecimals)
{
    EXPECT_EQ(formatFixed(3.14159, 2), "3.14");
    EXPECT_EQ(formatFixed(3.14159, 0), "3");
    EXPECT_EQ(formatFixed(-1.5, 1), "-1.5");
}

TEST(UnitsTest, DayConstantsAreConsistent)
{
    EXPECT_DOUBLE_EQ(day, 24.0 * hour);
    EXPECT_DOUBLE_EQ(hour, 60.0 * minute);
}

} // namespace
} // namespace units
} // namespace amped

/**
 * @file
 * Property tests of the evaluator over the *entire* mapping space of
 * a system: invariants that must hold for every valid mapping, every
 * batch size, and randomized model/system parameters.
 */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/amped_model.hpp"
#include "hw/presets.hpp"
#include "mapping/parallelism.hpp"
#include "model/presets.hpp"
#include "net/system_config.hpp"

namespace amped {
namespace core {
namespace {

net::SystemConfig
propertySystem()
{
    net::SystemConfig sys;
    sys.name = "prop-8x4";
    sys.numNodes = 8;
    sys.acceleratorsPerNode = 4;
    sys.intraLink =
        net::LinkConfig{"intra", Seconds{1e-6}, BitsPerSecond{2.4e12}};
    sys.interLink =
        net::LinkConfig{"inter", Seconds{2e-6}, BitsPerSecond{2e11}};
    sys.nicsPerNode = 4;
    return sys;
}

AmpedModel
propertyModel(net::SystemConfig sys = propertySystem())
{
    return AmpedModel(model::presets::tinyTest(),
                      hw::presets::tinyTest(),
                      hw::MicrobatchEfficiency(0.8, 4.0),
                      std::move(sys));
}

TrainingJob
propertyJob(double batch)
{
    TrainingJob job;
    job.batchSize = batch;
    job.numBatchesOverride = 10.0;
    return job;
}

/** Parameterized over every mapping of the 8x4 system. */
class MappingInvariants
    : public ::testing::TestWithParam<mapping::ParallelismConfig>
{};

TEST_P(MappingInvariants, BreakdownComponentsAreFiniteNonNegative)
{
    const auto result =
        propertyModel().evaluate(GetParam(), propertyJob(512.0));
    for (const auto &[label, seconds] : result.perBatch.phases()) {
        EXPECT_GE(seconds, 0.0) << label;
        EXPECT_TRUE(std::isfinite(seconds)) << label;
    }
    EXPECT_GT(result.timePerBatch, 0.0);
    EXPECT_GT(result.achievedFlopsPerGpu, 0.0);
    EXPECT_GT(result.efficiency, 0.0);
    EXPECT_LE(result.efficiency, 1.0);
}

TEST_P(MappingInvariants, AchievedThroughputBelowEffectivePeak)
{
    const auto model = propertyModel();
    const auto result =
        model.evaluate(GetParam(), propertyJob(512.0));
    // Model FLOPs (4x fwd incl. embeddings) can slightly exceed the
    // time-charged FLOPs (embeddings are metric-only), so allow 5 %.
    EXPECT_LT(result.achievedFlopsPerGpu,
              1.05 * model.accelerator().peakMacFlops().value());
}

TEST_P(MappingInvariants, FasterLinksNeverSlowTraining)
{
    const auto &m = GetParam();
    const auto base =
        propertyModel().evaluate(m, propertyJob(512.0));

    auto fast_sys = propertySystem();
    fast_sys.intraLink.bandwidth *= 4.0;
    fast_sys.interLink.bandwidth *= 4.0;
    const auto fast =
        propertyModel(fast_sys).evaluate(m, propertyJob(512.0));
    EXPECT_LE(fast.timePerBatch, base.timePerBatch + 1e-15);
}

TEST_P(MappingInvariants, LargerBatchNeverLowersThroughput)
{
    // With a monotone eff(ub) and fixed mapping, tokens/s never
    // drops when the batch grows.
    const auto model = propertyModel();
    const auto &m = GetParam();
    const auto small = model.evaluate(m, propertyJob(512.0));
    const auto large = model.evaluate(m, propertyJob(1024.0));
    EXPECT_GE(large.tokensPerSecond,
              small.tokensPerSecond * (1.0 - 1e-12));
}

TEST_P(MappingInvariants, MicrobatchRuleConsistency)
{
    const auto &m = GetParam();
    const auto result =
        propertyModel().evaluate(m, propertyJob(512.0));
    // Default rule: ub * N_ub * DP == batch.
    EXPECT_NEAR(result.microbatchSize * result.numMicrobatches *
                    static_cast<double>(m.dp()),
                512.0, 1e-6);
    // N_ub = PP under the default rule.
    EXPECT_DOUBLE_EQ(result.numMicrobatches,
                     static_cast<double>(m.pp()));
}

INSTANTIATE_TEST_SUITE_P(
    FullMappingSpace, MappingInvariants,
    ::testing::ValuesIn(
        mapping::MappingSpace(propertySystem()).enumerate(4)),
    [](const ::testing::TestParamInfo<mapping::ParallelismConfig>
           &info) {
        std::string name = info.param.toString();
        std::string out;
        for (char ch : name)
            if (std::isalnum(static_cast<unsigned char>(ch)))
                out += ch;
        return out + "_" + std::to_string(info.index);
    });

TEST(RandomizedInvariants, RandomModelsAndSystemsStayConsistent)
{
    Rng rng(42);
    for (int trial = 0; trial < 50; ++trial) {
        // Random small transformer.
        const std::int64_t heads = rng.uniformInt(1, 8);
        const std::int64_t head_dim = 8 * rng.uniformInt(1, 8);
        model::TransformerConfig cfg = model::makeGptConfig(
            "random", rng.uniformInt(1, 12), heads * head_dim, heads,
            16 * rng.uniformInt(1, 8), 1000 * rng.uniformInt(1, 50));

        // Random 2-tier system.
        net::SystemConfig sys = propertySystem();
        sys.numNodes = 1 << rng.uniformInt(0, 3);
        sys.acceleratorsPerNode = 1 << rng.uniformInt(0, 3);
        sys.nicsPerNode = sys.acceleratorsPerNode;
        sys.intraLink.bandwidth =
            BitsPerSecond{rng.uniformReal(1e11, 5e12)};
        sys.interLink.bandwidth =
            BitsPerSecond{rng.uniformReal(5e10, 1e12)};

        AmpedModel model(cfg, hw::presets::tinyTest(),
                         hw::MicrobatchEfficiency(
                             rng.uniformReal(0.3, 1.0),
                             rng.uniformReal(0.5, 64.0)),
                         sys);

        // Random valid mapping.
        mapping::MappingSpace space(sys);
        const auto mappings = space.enumerate();
        const auto &m = mappings[static_cast<std::size_t>(
            rng.uniformInt(0,
                           static_cast<std::int64_t>(mappings.size()) -
                               1))];

        TrainingJob job;
        job.batchSize =
            static_cast<double>(m.dp() * m.pp()) *
            static_cast<double>(rng.uniformInt(1, 16));
        job.numBatchesOverride = 5.0;

        const auto result = model.evaluate(m, job);
        EXPECT_TRUE(std::isfinite(result.timePerBatch)) << trial;
        EXPECT_GT(result.timePerBatch, 0.0) << trial;
        double sum = 0.0;
        for (const auto &[label, seconds] : result.perBatch.phases()) {
            EXPECT_GE(seconds, 0.0) << trial << " " << label;
            sum += seconds;
        }
        EXPECT_NEAR(sum, result.timePerBatch,
                    1e-9 * result.timePerBatch)
            << trial;
    }
}

TEST(RandomizedInvariants, SimulatorDeterminismAcrossRuns)
{
    // The deterministic RNG itself: same seed, same stream.
    Rng a(7), b(7);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.uniformInt(0, 1000), b.uniformInt(0, 1000));
        EXPECT_DOUBLE_EQ(a.uniformReal(0.0, 1.0),
                         b.uniformReal(0.0, 1.0));
    }
    Rng c(8);
    bool any_different = false;
    Rng a2(7);
    for (int i = 0; i < 100; ++i) {
        if (a2.uniformInt(0, 1000) != c.uniformInt(0, 1000))
            any_different = true;
    }
    EXPECT_TRUE(any_different);
}

} // namespace
} // namespace core
} // namespace amped

/**
 * @file
 * Tests for the metrics registry: counter/gauge/histogram semantics,
 * name-sorted snapshots, and the ISSUE acceptance bar that the
 * deterministic text render is byte-identical no matter how many
 * threads produced the same workload.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace amped {
namespace obs {
namespace {

TEST(ObsMetricsTest, CounterAccumulatesAndResets)
{
    MetricsRegistry registry;
    Counter &c = registry.counter("events");
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    // Lookups are idempotent: same name, same object.
    EXPECT_EQ(&registry.counter("events"), &c);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(ObsMetricsTest, GaugeIsLastWriteWins)
{
    MetricsRegistry registry;
    Gauge &g = registry.gauge("depth");
    g.set(3.5);
    g.set(-1.25);
    EXPECT_DOUBLE_EQ(g.value(), -1.25);
}

TEST(ObsMetricsTest, KindMismatchThrows)
{
    MetricsRegistry registry;
    registry.counter("name");
    EXPECT_THROW(registry.gauge("name"), UserError);
    EXPECT_THROW(registry.histogram("name"), UserError);
    EXPECT_THROW(registry.counter(""), UserError);
}

TEST(ObsMetricsTest, HistogramBucketGeometry)
{
    // Fixed power-of-two ladder starting at 1 ns.
    EXPECT_DOUBLE_EQ(Histogram::upperBound(0), 1e-9);
    EXPECT_DOUBLE_EQ(Histogram::upperBound(1), 2e-9);
    EXPECT_DOUBLE_EQ(Histogram::upperBound(10), 1024e-9);

    MetricsRegistry registry;
    Histogram &h = registry.histogram("lat");
    h.observe(0.5e-9);  // at/below first bound -> bucket 0
    h.observe(1e-9);    // exactly the first bound -> bucket 0
    h.observe(1.5e-9);  // (1ns, 2ns] -> bucket 1
    h.observe(1e30);    // beyond the last bound -> overflow bucket
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(Histogram::kNumBounds), 1u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.5e-9 + 1e-9 + 1.5e-9 + 1e30);
    // Bad observations pin to bucket 0 instead of corrupting state.
    h.observe(-1.0);
    h.observe(std::nan(""));
    EXPECT_EQ(h.bucketCount(0), 4u);
    EXPECT_EQ(h.count(), 6u);
}

TEST(ObsMetricsTest, SnapshotIsNameSorted)
{
    MetricsRegistry registry;
    registry.counter("zeta");
    registry.gauge("alpha");
    registry.histogram("mid");
    const auto snaps = registry.snapshot();
    ASSERT_EQ(snaps.size(), 3u);
    EXPECT_EQ(snaps[0].name, "alpha");
    EXPECT_EQ(snaps[1].name, "mid");
    EXPECT_EQ(snaps[2].name, "zeta");
    EXPECT_EQ(snaps[0].kind, MetricKind::gauge);
    EXPECT_EQ(snaps[1].kind, MetricKind::histogram);
    EXPECT_EQ(snaps[2].kind, MetricKind::counter);
    // Histogram snapshots always carry the full bucket array.
    EXPECT_EQ(snaps[1].buckets.size(),
              static_cast<std::size_t>(Histogram::kNumBounds + 1));
}

TEST(ObsMetricsTest, RenderTextModes)
{
    MetricsRegistry registry;
    registry.counter("runs").add(3);
    registry.gauge("load").set(0.5);
    Histogram &h = registry.histogram("wait.seconds", true);
    h.observe(1.5e-9);

    EXPECT_EQ(registry.renderText(RenderMode::deterministic),
              "load\t0.5\n"
              "runs\t3\n"
              "wait.seconds.count\t1\n");
    // Full mode adds the wall-clock-derived sum and buckets.
    EXPECT_EQ(registry.renderText(RenderMode::full),
              "load\t0.5\n"
              "runs\t3\n"
              "wait.seconds.count\t1\n"
              "wait.seconds.sum\t1.5e-09\n"
              "wait.seconds.le.2e-09\t1\n");
}

TEST(ObsMetricsTest, ResetAllZeroesValuesButKeepsNames)
{
    MetricsRegistry registry;
    registry.counter("c").add(5);
    registry.histogram("h").observe(1.0);
    registry.resetAll();
    EXPECT_EQ(registry.counter("c").value(), 0u);
    EXPECT_EQ(registry.histogram("h").count(), 0u);
    EXPECT_EQ(registry.snapshot().size(), 2u);
}

/**
 * Runs the same fixed workload (100k counter increments + 1k timing
 * observations) split across @p threads threads.
 */
std::string
renderAfterWorkload(int threads)
{
    MetricsRegistry registry;
    Counter &counter = registry.counter("work.items");
    Histogram &timer = registry.histogram("work.seconds", true);
    constexpr int kIncrements = 100000;
    constexpr int kObservations = 1000;
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
            for (int i = t; i < kIncrements; i += threads)
                counter.add(1);
            for (int i = t; i < kObservations; i += threads)
                // Wall-clock-like values that differ per thread; the
                // deterministic render must not depend on them.
                timer.observe(1e-6 * (t + 1) * (i + 1));
        });
    }
    for (auto &thread : pool)
        thread.join();
    return registry.renderText(RenderMode::deterministic);
}

TEST(ObsMetricsTest, DeterministicRenderIsByteStableAcrossThreads)
{
    const std::string serial = renderAfterWorkload(1);
    EXPECT_EQ(serial,
              "work.items\t100000\n"
              "work.seconds.count\t1000\n");
    EXPECT_EQ(renderAfterWorkload(8), serial);
}

TEST(ObsMetricsTest, GlobalRegistryIsInstrumentedBySubsystems)
{
    // The built-in instrumentation registers into the process-wide
    // registry; the same reference comes back every time.
    EXPECT_EQ(&MetricsRegistry::global(), &MetricsRegistry::global());
}

} // namespace
} // namespace obs
} // namespace amped

/**
 * @file
 * Tests for the AMPeD evaluator: each equation term, scaling
 * behaviours, breakdown consistency, and option knobs.
 */

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/amped_model.hpp"
#include "hw/presets.hpp"
#include "model/presets.hpp"
#include "net/system_config.hpp"

namespace amped {
namespace core {
namespace {

/** 2 nodes x 4 accelerators test system with distinct link speeds. */
net::SystemConfig
testSystem()
{
    net::SystemConfig sys;
    sys.name = "test-2x4";
    sys.numNodes = 2;
    sys.acceleratorsPerNode = 4;
    sys.intraLink =
        net::LinkConfig{"intra", Seconds{1e-6}, BitsPerSecond{2.4e12}};
    sys.interLink =
        net::LinkConfig{"inter", Seconds{2e-6}, BitsPerSecond{2e11}};
    sys.nicsPerNode = 4;
    return sys;
}

AmpedModel
testModel(ModelOptions options = {})
{
    return AmpedModel(model::presets::tinyTest(),
                      hw::presets::tinyTest(),
                      hw::MicrobatchEfficiency(0.8, 4.0), testSystem(),
                      options);
}

TrainingJob
testJob(double batch = 64.0)
{
    TrainingJob job;
    job.batchSize = batch;
    job.numBatchesOverride = 100.0;
    return job;
}

TEST(AmpedModelTest, BreakdownTotalIsSumOfPhases)
{
    const auto result = testModel().evaluate(
        mapping::makeMapping(4, 1, 1, 1, 2, 1), testJob());
    double sum = 0.0;
    for (const auto &[label, seconds] : result.perBatch.phases())
        sum += seconds;
    EXPECT_NEAR(result.perBatch.total(), sum, 1e-15);
    EXPECT_DOUBLE_EQ(result.timePerBatch, result.perBatch.total());
    EXPECT_DOUBLE_EQ(result.totalTime, 100.0 * result.timePerBatch);
}

TEST(AmpedModelTest, ComputeScalesInverselyWithWorkers)
{
    const auto model = testModel();
    // Same microbatch size in both mappings (pure TP does not shrink
    // ub), so efficiency is identical and compute scales exactly.
    const auto r_small = model.evaluate(
        mapping::makeMapping(4, 1, 1, 1, 1, 2), testJob());
    net::SystemConfig big = testSystem();
    big.numNodes = 4;
    AmpedModel model_big(model::presets::tinyTest(),
                         hw::presets::tinyTest(),
                         hw::MicrobatchEfficiency(0.8, 4.0), big);
    const auto r_big = model_big.evaluate(
        mapping::makeMapping(4, 1, 1, 2, 1, 2), testJob());
    // r_small runs on 8 workers, r_big on 16: halving the worker
    // count doubles the compute time.
    EXPECT_NEAR(r_small.perBatch.computation() /
                    r_big.perBatch.computation(),
                2.0, 1e-9);
}

TEST(AmpedModelTest, NoTpMeansNoTpComm)
{
    const auto result = testModel().evaluate(
        mapping::makeMapping(1, 1, 4, 1, 1, 2), testJob());
    EXPECT_DOUBLE_EQ(result.perBatch.commTpIntra, 0.0);
    EXPECT_DOUBLE_EQ(result.perBatch.commTpInter, 0.0);
}

TEST(AmpedModelTest, TpIntraCommMatchesEqSix)
{
    const auto model = testModel();
    const auto m = mapping::makeMapping(4, 1, 1, 1, 1, 2);
    const auto result = model.evaluate(m, testJob());
    // Replica batch = 64 / 2 = 32; per layer Eq. 6, x layers,
    // x (1 + backward multiplier = 2).
    const double per_layer = model.tpIntraCommTime(m, 32.0).value();
    EXPECT_GT(per_layer, 0.0);
    EXPECT_NEAR(result.perBatch.commTpIntra, per_layer * 4.0 * 2.0,
                1e-15);
    EXPECT_DOUBLE_EQ(result.perBatch.commTpInter, 0.0);
}

TEST(AmpedModelTest, TpInterIsSlowerThanTpIntra)
{
    const auto model = testModel();
    // Same total TP = 4 but split differently; inter link is 12x
    // slower per stream.
    const auto intra = model.evaluate(
        mapping::makeMapping(4, 1, 1, 1, 1, 2), testJob());
    net::SystemConfig wide = testSystem();
    wide.numNodes = 4;
    wide.acceleratorsPerNode = 2;
    AmpedModel model_wide(model::presets::tinyTest(),
                          hw::presets::tinyTest(),
                          hw::MicrobatchEfficiency(0.8, 4.0), wide);
    const auto inter = model_wide.evaluate(
        mapping::makeMapping(2, 1, 1, 2, 1, 2), testJob());
    EXPECT_GT(inter.perBatch.commTpInter, 0.0);
    EXPECT_GT(inter.perBatch.commTpInter + inter.perBatch.commTpIntra,
              intra.perBatch.commTpIntra);
}

TEST(AmpedModelTest, NoPipelineMeansNoBubbleAndNoPpComm)
{
    const auto result = testModel().evaluate(
        mapping::makeMapping(4, 1, 1, 1, 1, 2), testJob());
    EXPECT_DOUBLE_EQ(result.perBatch.bubble, 0.0);
    EXPECT_DOUBLE_EQ(result.perBatch.commPp, 0.0);
}

TEST(AmpedModelTest, BubbleMatchesEqEight)
{
    const auto model = testModel();
    const auto m = mapping::makeMapping(1, 4, 1, 1, 2, 1); // PP = 8
    TrainingJob job = testJob(64.0);
    const auto result = model.evaluate(m, job);
    // Default N_ub = PP = 8.
    EXPECT_DOUBLE_EQ(result.numMicrobatches, 8.0);
    const double useful =
        result.perBatch.computeForward +
        result.perBatch.computeBackward + result.perBatch.commPp +
        result.perBatch.commTpIntra + result.perBatch.commTpInter +
        result.perBatch.commMoe;
    EXPECT_NEAR(result.perBatch.bubble, (8.0 - 1.0) / 8.0 * useful,
                1e-15);
}

TEST(AmpedModelTest, BubbleScalesLinearlyWithR)
{
    ModelOptions half;
    half.bubbleOverlapRatio = 0.5;
    const auto m = mapping::makeMapping(1, 4, 1, 1, 2, 1);
    const auto full = testModel().evaluate(m, testJob());
    const auto overlapped = testModel(half).evaluate(m, testJob());
    EXPECT_NEAR(overlapped.perBatch.bubble,
                0.5 * full.perBatch.bubble, 1e-15);
}

TEST(AmpedModelTest, MoreMicrobatchesShrinkBubble)
{
    const auto m = mapping::makeMapping(1, 4, 1, 1, 2, 1);
    TrainingJob few = testJob(64.0);
    TrainingJob many = testJob(64.0);
    many.microbatching.numMicrobatchesOverride = 32.0;
    const auto r_few = testModel().evaluate(m, few);
    const auto r_many = testModel().evaluate(m, many);
    EXPECT_LT(r_many.perBatch.bubble, r_few.perBatch.bubble);
}

TEST(AmpedModelTest, NoDpMeansNoGradComm)
{
    const auto result = testModel().evaluate(
        mapping::makeMapping(4, 1, 1, 2, 1, 1), testJob());
    EXPECT_DOUBLE_EQ(result.perBatch.commGradIntra, 0.0);
    EXPECT_DOUBLE_EQ(result.perBatch.commGradInter, 0.0);
}

TEST(AmpedModelTest, GradCommUsesBothTiers)
{
    const auto result = testModel().evaluate(
        mapping::makeMapping(1, 1, 4, 1, 1, 2), testJob());
    EXPECT_GT(result.perBatch.commGradIntra, 0.0);
    EXPECT_GT(result.perBatch.commGradInter, 0.0);
}

TEST(AmpedModelTest, FlatAllReduceIsSlowerThanHierarchical)
{
    ModelOptions flat;
    flat.hierarchicalGradAllReduce = false;
    const auto m = mapping::makeMapping(1, 1, 4, 1, 1, 2);
    const auto hier = testModel().evaluate(m, testJob());
    const auto flat_r = testModel(flat).evaluate(m, testJob());
    // Flat pushes all 8 DP ranks over the slow inter tier.
    EXPECT_GT(flat_r.perBatch.communication(),
              hier.perBatch.communication());
    EXPECT_DOUBLE_EQ(flat_r.perBatch.commGradIntra, 0.0);
}

TEST(AmpedModelTest, ZeroDpOverheadScalesForwardComm)
{
    ModelOptions zero;
    zero.zeroDpOverhead = 0.5;
    const auto m = mapping::makeMapping(4, 1, 1, 1, 1, 2);
    const auto plain = testModel().evaluate(m, testJob());
    const auto with_zero = testModel(zero).evaluate(m, testJob());
    EXPECT_NEAR(with_zero.perBatch.commTpIntra,
                1.5 * plain.perBatch.commTpIntra, 1e-15);
    // Gradient all-reduce is not scaled by the ZeRO factor.
    EXPECT_DOUBLE_EQ(with_zero.perBatch.commGradIntra,
                     plain.perBatch.commGradIntra);
}

TEST(AmpedModelTest, GradientBitsOverrideScalesGradComm)
{
    ModelOptions wide;
    wide.gradientBits = Bits{32.0}; // default: parameter precision 16
    const auto m = mapping::makeMapping(1, 1, 4, 1, 1, 2);
    const auto narrow = testModel().evaluate(m, testJob());
    const auto wide_r = testModel(wide).evaluate(m, testJob());
    // Bandwidth term doubles; latency term unchanged, so < 2x.
    EXPECT_GT(wide_r.perBatch.commGradIntra,
              narrow.perBatch.commGradIntra);
    EXPECT_LE(wide_r.perBatch.commGradIntra,
              2.0 * narrow.perBatch.commGradIntra + 1e-12);
}

TEST(AmpedModelTest, DenseModelHasNoMoeComm)
{
    const auto result = testModel().evaluate(
        mapping::makeMapping(4, 1, 1, 1, 1, 2), testJob());
    EXPECT_DOUBLE_EQ(result.perBatch.commMoe, 0.0);
}

TEST(AmpedModelTest, MoeModelPaysAllToAll)
{
    auto cfg = model::presets::tinyTest();
    cfg.moe.numExperts = 4;
    cfg.moe.moeLayerInterval = 2;
    AmpedModel moe_model(cfg, hw::presets::tinyTest(),
                         hw::MicrobatchEfficiency(0.8, 4.0),
                         testSystem());
    const auto result = moe_model.evaluate(
        mapping::makeMapping(4, 1, 1, 1, 1, 2), testJob());
    EXPECT_GT(result.perBatch.commMoe, 0.0);

    ModelOptions off;
    off.enableMoeComm = false;
    AmpedModel moe_off(cfg, hw::presets::tinyTest(),
                       hw::MicrobatchEfficiency(0.8, 4.0),
                       testSystem(), off);
    EXPECT_DOUBLE_EQ(moe_off
                         .evaluate(mapping::makeMapping(4, 1, 1, 1, 1,
                                                        2),
                                   testJob())
                         .perBatch.commMoe,
                     0.0);
}

TEST(AmpedModelTest, AchievedFlopsNeverExceedPeak)
{
    const auto model = testModel();
    const auto result = model.evaluate(
        mapping::makeMapping(4, 1, 1, 1, 2, 1), testJob(256.0));
    EXPECT_GT(result.achievedFlopsPerGpu, 0.0);
    EXPECT_LT(result.achievedFlopsPerGpu,
              model.accelerator().peakMacFlops().value());
}

TEST(AmpedModelTest, HigherEfficiencyMeansFasterTraining)
{
    const auto m = mapping::makeMapping(4, 1, 1, 1, 1, 2);
    AmpedModel slow(model::presets::tinyTest(),
                    hw::presets::tinyTest(),
                    hw::MicrobatchEfficiency(0.4, 4.0), testSystem());
    AmpedModel fast(model::presets::tinyTest(),
                    hw::presets::tinyTest(),
                    hw::MicrobatchEfficiency(0.8, 4.0), testSystem());
    EXPECT_GT(slow.evaluate(m, testJob()).timePerBatch,
              fast.evaluate(m, testJob()).timePerBatch);
}

TEST(AmpedModelTest, FasterInterconnectNeverHurts)
{
    const auto m = mapping::makeMapping(1, 1, 4, 2, 1, 1);
    auto slow_sys = testSystem();
    auto fast_sys = testSystem();
    fast_sys.interLink.bandwidth *= 10.0;
    AmpedModel slow(model::presets::tinyTest(),
                    hw::presets::tinyTest(),
                    hw::MicrobatchEfficiency(0.8, 4.0), slow_sys);
    AmpedModel fast(model::presets::tinyTest(),
                    hw::presets::tinyTest(),
                    hw::MicrobatchEfficiency(0.8, 4.0), fast_sys);
    EXPECT_GT(slow.evaluate(m, testJob()).timePerBatch,
              fast.evaluate(m, testJob()).timePerBatch);
}

TEST(AmpedModelTest, RejectsMappingNotMatchingSystem)
{
    EXPECT_THROW(testModel().evaluate(
                     mapping::makeMapping(2, 1, 1, 1, 1, 2), testJob()),
                 UserError);
}

TEST(AmpedModelTest, RejectsBadOptions)
{
    ModelOptions bad;
    bad.bubbleOverlapRatio = -1.0;
    EXPECT_THROW(testModel(bad), UserError);
    bad = ModelOptions{};
    bad.zeroDpOverhead = -0.5;
    EXPECT_THROW(testModel(bad), UserError);
}

TEST(AmpedModelTest, TokensPerSecondConsistent)
{
    const auto result = testModel().evaluate(
        mapping::makeMapping(4, 1, 1, 1, 2, 1), testJob(64.0));
    const double seq =
        static_cast<double>(model::presets::tinyTest().seqLength);
    EXPECT_NEAR(result.tokensPerSecond,
                64.0 * seq / result.timePerBatch, 1e-9);
}

TEST(AmpedModelTest, TrainingDaysConversion)
{
    EvaluationResult r;
    r.totalTime = 86400.0 * 3.0;
    EXPECT_DOUBLE_EQ(r.trainingDays(), 3.0);
}

TEST(AmpedModelTest, MoeCommOverlapsAcrossPipelineStages)
{
    // MoE all-to-all, like TP comm, is paid per stage concurrently:
    // adding PP must scale the per-batch MoE time by 1/PP (with the
    // same per-replica batch).
    auto cfg = model::presets::tinyTest();
    cfg.moe.numExperts = 4;
    cfg.moe.moeLayerInterval = 2;
    AmpedModel moe_model(cfg, hw::presets::tinyTest(),
                         hw::MicrobatchEfficiency(0.8, 4.0),
                         testSystem());
    TrainingJob job = testJob(64.0);
    // Keep the efficiency point identical across the two mappings.
    job.microbatching.microbatchSizeOverride = 8.0;
    const auto no_pp = moe_model.evaluate(
        mapping::makeMapping(4, 1, 1, 1, 1, 2), job);
    const auto with_pp = moe_model.evaluate(
        mapping::makeMapping(4, 1, 1, 1, 2, 1), job);
    ASSERT_GT(no_pp.perBatch.commMoe, 0.0);
    // Same replica batch (DP2 vs PP2 swap keeps batch/DP ratio 2x):
    // compare per-replica-normalized MoE comm instead.
    const auto pp_only = moe_model.evaluate(
        mapping::makeMapping(1, 2, 2, 1, 2, 1), job);
    EXPECT_GT(pp_only.perBatch.commMoe, 0.0);
    EXPECT_LT(with_pp.perBatch.commMoe / 2.0,
              no_pp.perBatch.commMoe);
}

TEST(AmpedModelTest, PipelineDeeperThanLayersIsAllowed)
{
    // The analytical equations do not require PP <= L (used by the
    // Case Study II low-end sweep).
    net::SystemConfig sys = testSystem();
    sys.numNodes = 8;
    sys.acceleratorsPerNode = 1;
    AmpedModel model(model::presets::tinyTest(),
                     hw::presets::tinyTest(),
                     hw::MicrobatchEfficiency(0.8, 4.0), sys);
    // PP = 8 > L = 4.
    EXPECT_NO_THROW(model.evaluate(
        mapping::makeMapping(1, 1, 1, 1, 8, 1), testJob()));
}

} // namespace
} // namespace core
} // namespace amped

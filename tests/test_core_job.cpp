/**
 * @file
 * Tests for TrainingJob batch-count derivation.
 */

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/training_job.hpp"

namespace amped {
namespace core {
namespace {

TEST(TrainingJobTest, NumBatchesFromTokenBudget)
{
    TrainingJob job;
    job.batchSize = 1024.0;
    job.totalTrainingTokens = 300e9;
    // 300e9 / (1024 * 2048).
    EXPECT_NEAR(job.numBatches(2048), 143051.15, 0.5);
}

TEST(TrainingJobTest, OverrideWins)
{
    TrainingJob job;
    job.batchSize = 1024.0;
    job.totalTrainingTokens = 300e9;
    job.numBatchesOverride = 42.0;
    EXPECT_DOUBLE_EQ(job.numBatches(2048), 42.0);
}

TEST(TrainingJobTest, ValidateRejectsBadFields)
{
    TrainingJob job;
    job.batchSize = 0.0;
    EXPECT_THROW(job.validate(), UserError);
    job.batchSize = 16.0;
    job.totalTrainingTokens = 0.0;
    job.numBatchesOverride = 0.0;
    EXPECT_THROW(job.validate(), UserError);
    job.numBatchesOverride = 10.0;
    EXPECT_NO_THROW(job.validate());
}

TEST(TrainingJobTest, RejectsBadSequenceLength)
{
    TrainingJob job;
    job.batchSize = 16.0;
    EXPECT_THROW(job.numBatches(0), UserError);
}

} // namespace
} // namespace core
} // namespace amped

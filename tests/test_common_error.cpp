/**
 * @file
 * Tests for the error machinery: UserError/fatal/require semantics
 * and the panic assertion.
 */

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace amped {
namespace {

TEST(ErrorTest, FatalThrowsUserError)
{
    EXPECT_THROW(fatal("bad value ", 42), UserError);
}

TEST(ErrorTest, FatalMessageConcatenatesParts)
{
    try {
        fatal("alpha ", 1, " beta ", 2.5);
        FAIL() << "fatal did not throw";
    } catch (const UserError &e) {
        EXPECT_STREQ(e.what(), "alpha 1 beta 2.5");
    }
}

TEST(ErrorTest, RequirePassesOnTrue)
{
    EXPECT_NO_THROW(require(true, "never shown"));
}

TEST(ErrorTest, RequireThrowsOnFalse)
{
    EXPECT_THROW(require(false, "condition failed"), UserError);
}

TEST(ErrorTest, RequireMessageIsPreserved)
{
    try {
        require(1 > 2, "one is not greater than ", 2);
        FAIL() << "require did not throw";
    } catch (const UserError &e) {
        EXPECT_STREQ(e.what(), "one is not greater than 2");
    }
}

TEST(ErrorTest, UserErrorIsRuntimeError)
{
    // Callers may catch std::runtime_error generically.
    EXPECT_THROW(fatal("generic"), std::runtime_error);
}

TEST(ErrorDeathTest, AssertAbortsOnViolation)
{
    EXPECT_DEATH(
        { AMPED_ASSERT(false, "internal invariant broken"); },
        "internal invariant broken");
}

TEST(ErrorTest, AssertPassesOnTrue)
{
    AMPED_ASSERT(true, "not triggered");
    SUCCEED();
}

} // namespace
} // namespace amped

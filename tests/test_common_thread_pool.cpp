/**
 * @file
 * Tests for the worker pool behind the parallel design-space
 * sweeps: full index coverage, serial fallback, exception
 * propagation, clean shutdown, and the AMPED_THREADS override.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"

namespace amped {
namespace {

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(4u, pool.threadCount());
    std::vector<std::atomic<int>> hits(1000);
    pool.parallelFor(1000, 7, [&](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(1, hits[i].load()) << "index " << i;
}

TEST(ThreadPoolTest, SingleThreadRunsOnCaller)
{
    ThreadPool pool(1);
    EXPECT_EQ(1u, pool.threadCount());
    std::vector<std::thread::id> ids(64);
    pool.parallelFor(64, 8,
                     [&](std::size_t i) {
                         ids[i] = std::this_thread::get_id();
                     });
    for (const auto &id : ids)
        EXPECT_EQ(std::this_thread::get_id(), id);
}

TEST(ThreadPoolTest, MaxWorkersOneForcesSerial)
{
    ThreadPool pool(4);
    std::vector<std::thread::id> ids(64);
    pool.parallelFor(
        64, 4,
        [&](std::size_t i) { ids[i] = std::this_thread::get_id(); },
        /*max_workers=*/1);
    for (const auto &id : ids)
        EXPECT_EQ(std::this_thread::get_id(), id);
}

TEST(ThreadPoolTest, ParallelEqualsSerialByIndex)
{
    const std::size_t n = 500;
    auto value = [](std::size_t i) {
        return static_cast<double>(i) * 1.25 + 3.0;
    };
    std::vector<double> serial(n, 0.0), parallel(n, 0.0);
    ThreadPool one(1), many(4);
    one.parallelFor(n, 16,
                    [&](std::size_t i) { serial[i] = value(i); });
    many.parallelFor(n, 16,
                     [&](std::size_t i) { parallel[i] = value(i); });
    EXPECT_EQ(serial, parallel);
}

TEST(ThreadPoolTest, ExceptionsPropagateAndPoolSurvives)
{
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallelFor(1000, 4,
                                  [](std::size_t i) {
                                      if (i == 137)
                                          throw std::runtime_error(
                                              "boom at 137");
                                  }),
                 std::runtime_error);

    // The pool keeps working after a failed loop.
    std::atomic<int> count{0};
    pool.parallelFor(100, 4, [&](std::size_t) {
        count.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(100, count.load());
}

TEST(ThreadPoolTest, LowestIndexExceptionWinsAtOneAndFourThreads)
{
    // When several indices throw, the exception surfaced must be the
    // one a serial run would hit first — the lowest index — at every
    // thread count, so diagnostics do not depend on scheduling.
    const auto run = [](unsigned threads) {
        ThreadPool pool(threads);
        std::string message;
        try {
            pool.parallelFor(1000, 4, [](std::size_t i) {
                if (i == 137 || i == 138 || i == 901)
                    throw std::runtime_error(
                        "boom at " + std::to_string(i));
            });
        } catch (const std::runtime_error &error) {
            message = error.what();
        }
        return message;
    };
    EXPECT_EQ(run(1), "boom at 137");
    EXPECT_EQ(run(4), "boom at 137");
}

TEST(ThreadPoolTest, ExceptionOnSerialPathPropagates)
{
    ThreadPool pool(1);
    EXPECT_THROW(pool.parallelFor(10, 1,
                                  [](std::size_t i) {
                                      if (i == 3)
                                          throw std::runtime_error(
                                              "serial boom");
                                  }),
                 std::runtime_error);
}

TEST(ThreadPoolTest, ShutdownJoinsCleanly)
{
    // Destroy an idle pool...
    { ThreadPool pool(8); }
    // ...and one that just ran work; both must join without hanging.
    {
        ThreadPool pool(3);
        std::atomic<int> count{0};
        pool.parallelFor(10, 1, [&](std::size_t) {
            count.fetch_add(1, std::memory_order_relaxed);
        });
        EXPECT_EQ(10, count.load());
    }
    SUCCEED();
}

TEST(ThreadPoolTest, ZeroItemsAndZeroChunkAreHandled)
{
    ThreadPool pool(4);
    int calls = 0;
    pool.parallelFor(0, 8, [&](std::size_t) { ++calls; });
    EXPECT_EQ(0, calls);

    std::atomic<int> count{0};
    pool.parallelFor(10, 0, [&](std::size_t) {
        count.fetch_add(1, std::memory_order_relaxed);
    }); // chunk 0 behaves as 1
    EXPECT_EQ(10, count.load());
}

TEST(ThreadPoolTest, DefaultThreadCountHonorsEnvOverride)
{
    setenv("AMPED_THREADS", "3", 1);
    EXPECT_EQ(3u, ThreadPool::defaultThreadCount());
    ThreadPool pool; // picks up the override
    EXPECT_EQ(3u, pool.threadCount());

    setenv("AMPED_THREADS", "not-a-number", 1);
    EXPECT_GE(ThreadPool::defaultThreadCount(), 1u);
    setenv("AMPED_THREADS", "0", 1);
    EXPECT_GE(ThreadPool::defaultThreadCount(), 1u);

    unsetenv("AMPED_THREADS");
    EXPECT_GE(ThreadPool::defaultThreadCount(), 1u);
}

} // namespace
} // namespace amped

/**
 * @file
 * Correctness tests for the branch-and-bound strategy optimizer
 * (explore/optimizer.hpp), in three layers:
 *
 *  1. Exhaustive equivalence.  The optimizer's top-k must be
 *     *bit-pattern*-identical to brute force — run the full grid
 *     through Explorer::sweepJobs, sort by (total time, grid order),
 *     truncate — over ~200 randomized grids mixing feasible /
 *     infeasible / over-memory / NaN-poisoned points, at thread
 *     counts 1, 2 and 8.  Counters must be thread-count-invariant
 *     and partition the grid exactly; any grid where the bound
 *     pruned points while the ranking still matches brute force is
 *     direct evidence the bound never discarded a true winner.
 *  2. Degenerate searches.  Infeasible-everywhere grids, one-device
 *     clusters, prime device counts and expert-parallel requests on
 *     dense models must produce diagnosable empty/short results or
 *     field-named UserErrors — never a crash or a NaN ranking.
 *  3. Differential bands.  The optimizer's winners are cross-checked
 *     against sim::TrainingSimulator with the same tolerance bands
 *     test_differential.cpp documents (DP 6 %, GPipe 14 %, TP 15 %).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/memory_model.hpp"
#include "explore/explorer.hpp"
#include "explore/optimizer.hpp"
#include "hw/presets.hpp"
#include "model/presets.hpp"
#include "net/system_config.hpp"
#include "sim/training_sim.hpp"
#include "validate/calibrations.hpp"

namespace amped {
namespace explore {
namespace {

net::SystemConfig
testSystem()
{
    net::SystemConfig sys;
    sys.name = "test-4x4";
    sys.numNodes = 4;
    sys.acceleratorsPerNode = 4;
    sys.intraLink =
        net::LinkConfig{"intra", Seconds{1e-6}, BitsPerSecond{2.4e12}};
    sys.interLink =
        net::LinkConfig{"inter", Seconds{2e-6}, BitsPerSecond{2e11}};
    sys.nicsPerNode = 4;
    return sys;
}

core::AmpedModel
tinyModel(const net::SystemConfig &sys = testSystem())
{
    return core::AmpedModel(model::presets::tinyTest(),
                            hw::presets::tinyTest(),
                            hw::MicrobatchEfficiency(0.8, 4.0), sys);
}

core::AmpedModel
minGptModel()
{
    return core::AmpedModel(model::presets::minGpt85M(),
                            hw::presets::tinyTest(),
                            hw::MicrobatchEfficiency(0.8, 4.0),
                            testSystem());
}

std::uint64_t
bits(double value)
{
    std::uint64_t out = 0;
    static_assert(sizeof(out) == sizeof(value));
    std::memcpy(&out, &value, sizeof(out));
    return out;
}

/** Every numeric field of one sweep entry, as bit patterns. */
std::vector<std::uint64_t>
entryBits(const SweepEntry &entry)
{
    const auto &r = entry.result;
    const auto &b = r.perBatch;
    return {bits(entry.batchSize),      bits(b.computeForward),
            bits(b.computeBackward),    bits(b.weightUpdate),
            bits(b.commTpIntra),        bits(b.commTpInter),
            bits(b.commPp),             bits(b.commMoe),
            bits(b.commGradIntra),      bits(b.commGradInter),
            bits(b.bubble),             bits(r.timePerBatch),
            bits(r.numBatches),         bits(r.totalTime),
            bits(r.microbatchSize),     bits(r.numMicrobatches),
            bits(r.efficiency),         bits(r.achievedFlopsPerGpu),
            bits(r.tokensPerSecond)};
}

/**
 * Brute-force reference ranking: evaluate the whole grid with the
 * exhaustive engine, sort ascending by total time (NaN last, ties in
 * grid order — Explorer::sortByTime is stable over grid-ordered
 * entries) and truncate to k.
 */
std::vector<SweepEntry>
bruteForceTopK(const core::AmpedModel &model,
               const core::MemoryModel *screen,
               const std::vector<mapping::ParallelismConfig> &mappings,
               const std::vector<double> &batch_sizes,
               const core::TrainingJob &job_template, std::size_t k)
{
    Explorer explorer(model);
    explorer.setBatchMode(true);
    explorer.setThreads(1);
    if (screen != nullptr)
        explorer.setMemoryModel(*screen);
    testing::internal::CaptureStderr();
    auto result = explorer.sweep(mappings, batch_sizes, job_template);
    testing::internal::GetCapturedStderr();
    Explorer::sortByTime(result.entries);
    if (result.entries.size() > k)
        result.entries.resize(k);
    return result.entries;
}

OptimizerResult
runOptimizer(const core::AmpedModel &model,
             const core::MemoryModel *screen, unsigned threads,
             const std::vector<mapping::ParallelismConfig> &mappings,
             const OptimizerRequest &request)
{
    Optimizer optimizer(model);
    optimizer.setThreads(threads);
    if (screen != nullptr)
        optimizer.setMemoryModel(*screen);
    testing::internal::CaptureStderr();
    auto result = optimizer.optimizeOver(mappings, request);
    testing::internal::GetCapturedStderr();
    return result;
}

/** Asserts the optimizer ranking is bit-identical to brute force. */
void
expectSameRanking(const std::vector<SweepEntry> &ref,
                  const std::vector<SweepEntry> &got,
                  const char *label)
{
    ASSERT_EQ(ref.size(), got.size()) << label;
    for (std::size_t i = 0; i < ref.size(); ++i) {
        EXPECT_EQ(ref[i].mapping.toString(),
                  got[i].mapping.toString())
            << label << " rank " << i;
        EXPECT_EQ(entryBits(ref[i]), entryBits(got[i]))
            << label << " rank " << i << " ("
            << ref[i].mapping.toString() << ")";
    }
}

/** The counter partition invariants from the header contract. */
void
expectCountersPartition(const OptimizerCounters &c, const char *label)
{
    EXPECT_EQ(c.points, c.prunedByMemory + c.prunedByBound +
                            c.skippedInfeasible + c.evaluated)
        << label;
    EXPECT_EQ(c.evaluated,
              c.feasible + c.infeasible + c.overMemory + c.failed)
        << label;
}

void
expectSameCounters(const OptimizerCounters &a,
                   const OptimizerCounters &b, const char *label)
{
    EXPECT_EQ(a.points, b.points) << label;
    EXPECT_EQ(a.cells, b.cells) << label;
    EXPECT_EQ(a.evaluated, b.evaluated) << label;
    EXPECT_EQ(a.prunedByMemory, b.prunedByMemory) << label;
    EXPECT_EQ(a.prunedByBound, b.prunedByBound) << label;
    EXPECT_EQ(a.skippedInfeasible, b.skippedInfeasible) << label;
    EXPECT_EQ(a.feasible, b.feasible) << label;
    EXPECT_EQ(a.infeasible, b.infeasible) << label;
    EXPECT_EQ(a.overMemory, b.overMemory) << label;
    EXPECT_EQ(a.failed, b.failed) << label;
}

TEST(ExploreOptimizerProperty, TopKMatchesBruteForceOverRandomGrids)
{
    std::mt19937 rng(0xB0DDED17u);
    const auto tiny = tinyModel();
    const auto mingpt = minGptModel();
    // No activation recomputation: low-parallelism minGPT points
    // overflow the tiny 4 GB device, exercising the memory screen.
    core::MemoryOptions screen_options;
    screen_options.activationRecompute = false;
    const core::MemoryModel screen(
        model::OpCounter(model::presets::minGpt85M()),
        hw::presets::tinyTest(), screen_options);

    const auto all_mappings =
        mapping::MappingSpace(testSystem()).enumerate();
    ASSERT_GT(all_mappings.size(), 4u);

    OptimizerCounters totals;
    for (int grid = 0; grid < 200; ++grid) {
        const bool use_mingpt = grid % 2 == 1;
        const auto &model = use_mingpt ? mingpt : tiny;
        const core::MemoryModel *mem =
            use_mingpt && grid % 4 == 1 ? &screen : nullptr;

        std::uniform_int_distribution<std::size_t> pick(
            0, all_mappings.size() - 1);
        std::uniform_int_distribution<int> mapping_count(1, 8);
        std::vector<mapping::ParallelismConfig> mappings;
        const int m = mapping_count(rng);
        for (int i = 0; i < m; ++i)
            mappings.push_back(all_mappings[pick(rng)]);

        std::uniform_int_distribution<int> batch_count(1, 6);
        std::uniform_int_distribution<int> batch_pick(0, 7);
        std::uniform_int_distribution<int> odds(0, 9);
        static const double kBatches[] = {1.0,   2.0,    7.0,
                                          16.0,  64.0,   63.0,
                                          256.0, 4096.0};
        OptimizerRequest request;
        const int b = batch_count(rng);
        for (int i = 0; i < b; ++i)
            request.batchSizes.push_back(kBatches[batch_pick(rng)]);
        request.jobTemplate.totalTrainingTokens = 1e9;
        const int roll = odds(rng);
        if (roll == 0) // Poison: NaN-pins every point of the grid.
            request.jobTemplate.numBatchesOverride =
                std::numeric_limits<double>::infinity();
        else if (roll < 3)
            request.jobTemplate.numBatchesOverride = 5.0;
        if (roll == 4) // Often infeasible for large mappings.
            request.jobTemplate.microbatching.microbatchSizeOverride =
                2.0;
        else if (roll == 5)
            request.jobTemplate.microbatching
                .numMicrobatchesOverride = 4.0;
        std::uniform_int_distribution<int> k_pick(1, 6);
        request.topK = static_cast<std::size_t>(k_pick(rng));

        const auto ref = bruteForceTopK(
            model, mem, mappings, request.batchSizes,
            request.jobTemplate, request.topK);

        const auto at1 =
            runOptimizer(model, mem, 1, mappings, request);
        ASSERT_NO_FATAL_FAILURE(
            expectSameRanking(ref, at1.topK, "optimize@1"))
            << "grid " << grid;
        expectCountersPartition(at1.counters, "optimize@1");

        for (const unsigned threads : {2u, 8u}) {
            const auto got =
                runOptimizer(model, mem, threads, mappings, request);
            const std::string label =
                "optimize@" + std::to_string(threads);
            ASSERT_NO_FATAL_FAILURE(
                expectSameRanking(ref, got.topK, label.c_str()))
                << "grid " << grid;
            expectSameCounters(at1.counters, got.counters,
                               label.c_str());
        }
        if (::testing::Test::HasFailure())
            FAIL() << "first mismatch at grid " << grid;

        totals.points += at1.counters.points;
        totals.evaluated += at1.counters.evaluated;
        totals.prunedByMemory += at1.counters.prunedByMemory;
        totals.prunedByBound += at1.counters.prunedByBound;
        totals.skippedInfeasible += at1.counters.skippedInfeasible;
        totals.feasible += at1.counters.feasible;
        totals.failed += at1.counters.failed;
    }
    // The generator must exercise every disposition class — in
    // particular prunedByBound > 0 together with the bit-identical
    // rankings above is the direct proof that the bound never
    // discarded a true winner.
    EXPECT_GT(totals.feasible, 0u);
    EXPECT_GT(totals.prunedByMemory, 0u);
    EXPECT_GT(totals.prunedByBound, 0u);
    EXPECT_GT(totals.skippedInfeasible, 0u);
    EXPECT_GT(totals.failed, 0u);
    EXPECT_LT(totals.evaluated, totals.points);
}

// ---------------------------------------------------------------------
// Degenerate searches.
// ---------------------------------------------------------------------

TEST(ExploreOptimizerDegenerate, InfeasibleEverywhereGridIsEmptyAndCounted)
{
    // A 1-byte device: the memory screen rejects every point.
    auto starved = hw::presets::tinyTest();
    starved.memoryBytes = 1.0;
    const core::MemoryModel screen(
        model::OpCounter(model::presets::tinyTest()), starved);

    Optimizer optimizer(tinyModel());
    optimizer.setMemoryModel(screen);
    OptimizerRequest request;
    request.batchSizes = {64.0};
    request.topK = 5;
    const auto result = optimizer.optimize(request);
    EXPECT_TRUE(result.topK.empty());
    EXPECT_EQ(result.counters.feasible, 0u);
    EXPECT_GT(result.counters.prunedByMemory, 0u);
    // Every point is accounted for — nothing silently vanished.
    expectCountersPartition(result.counters, "infeasible-everywhere");
}

TEST(ExploreOptimizerDegenerate, SingleDeviceClusterReturnsTheOnlyMapping)
{
    net::SystemConfig sys = testSystem();
    sys.numNodes = 1;
    sys.acceleratorsPerNode = 1;
    Optimizer optimizer(tinyModel(sys));
    OptimizerRequest request;
    request.batchSizes = {16.0};
    request.topK = 3;
    const auto result = optimizer.optimize(request);
    ASSERT_EQ(result.topK.size(), 1u);
    EXPECT_EQ(result.topK.front().mapping.totalWorkers(), 1);
    EXPECT_TRUE(
        std::isfinite(result.topK.front().result.totalTime));
}

TEST(ExploreOptimizerDegenerate, PrimeDeviceCountStillRanksTrivialSplits)
{
    // 7 nodes x 1 device: only 1-or-7 factorizations exist.
    net::SystemConfig sys = testSystem();
    sys.numNodes = 7;
    sys.acceleratorsPerNode = 1;
    const auto model = tinyModel(sys);
    Optimizer optimizer(model);
    OptimizerRequest request;
    request.batchSizes = {64.0};
    request.topK = 4;
    const auto result = optimizer.optimize(request);
    ASSERT_FALSE(result.topK.empty());
    for (const auto &entry : result.topK) {
        EXPECT_TRUE(std::isfinite(entry.result.totalTime));
        const auto workers = entry.mapping.totalWorkers();
        EXPECT_TRUE(workers == 1 || workers == 7)
            << entry.mapping.toString();
    }
    // And the ranking still matches brute force exactly.
    const auto mappings = mapping::MappingSpace(sys).enumerate(
        model.opCounter().config().numLayers);
    const auto ref =
        bruteForceTopK(model, nullptr, mappings, request.batchSizes,
                       request.jobTemplate, request.topK);
    expectSameRanking(ref, result.topK, "prime-cluster");
}

TEST(ExploreOptimizerDegenerate, ExpertParallelOnDenseModelIsRejected)
{
    Optimizer optimizer(tinyModel());
    OptimizerRequest request;
    request.batchSizes = {16.0};
    request.expertParallel = 2;
    try {
        optimizer.optimize(request);
        FAIL() << "expected UserError";
    } catch (const UserError &e) {
        EXPECT_NE(std::string(e.what()).find("mixture-of-experts"),
                  std::string::npos)
            << e.what();
    }
}

TEST(ExploreOptimizerDegenerate, ExpertParallelMustDivideExpertCount)
{
    auto cfg = model::presets::tinyTest();
    cfg.moe.numExperts = 8;
    const core::AmpedModel moe_model(
        cfg, hw::presets::tinyTest(),
        hw::MicrobatchEfficiency(0.8, 4.0), testSystem());
    Optimizer optimizer(moe_model);
    OptimizerRequest request;
    request.batchSizes = {16.0};

    request.expertParallel = 3; // 3 does not divide 8.
    EXPECT_THROW(optimizer.optimize(request), UserError);

    request.expertParallel = 2; // Valid MoE degree.
    const auto result = optimizer.optimize(request);
    EXPECT_FALSE(result.topK.empty());

    request.expertParallel = 0; // Degrees below 1 are meaningless.
    EXPECT_THROW(optimizer.optimize(request), UserError);
}

TEST(ExploreOptimizerDegenerate, EmptyRequestsAreRejected)
{
    Optimizer optimizer(tinyModel());
    OptimizerRequest request;
    EXPECT_THROW(optimizer.optimize(request), UserError);
    request.batchSizes = {16.0};
    request.topK = 0;
    EXPECT_THROW(optimizer.optimize(request), UserError);
}

// ---------------------------------------------------------------------
// Differential bands against the discrete-event simulator, mirroring
// tests/test_differential.cpp's grids and tolerances.
// ---------------------------------------------------------------------

/** Shared efficiency calibration for the minGPT-class checks. */
hw::MicrobatchEfficiency
gridEfficiency()
{
    return validate::calibrations::minGptHgx2();
}

/** Optimizer winner's time-per-batch on an HGX-2-like pool. */
double
optimizedStep(const mapping::ParallelismConfig &mapping,
              std::int64_t devices, double batch)
{
    const core::AmpedModel model(
        model::presets::minGpt85M(), hw::presets::v100Sxm3(),
        gridEfficiency(), net::presets::hgx2(devices),
        validate::calibrations::nvswitchOptions(devices));
    Optimizer optimizer(model);
    OptimizerRequest request;
    request.batchSizes = {batch};
    request.jobTemplate.numBatchesOverride = 1.0;
    request.topK = 1;
    const auto result = optimizer.optimizeOver({mapping}, request);
    EXPECT_EQ(result.topK.size(), 1u);
    return result.topK.empty()
               ? std::numeric_limits<double>::quiet_NaN()
               : result.topK.front().result.timePerBatch;
}

sim::TrainingSimulator
makeSimulator()
{
    sim::TrainingSimulator simulator(
        model::presets::minGpt85M(), hw::presets::v100Sxm3(),
        gridEfficiency(), net::presets::nvlinkV100());
    // Match the analytic recompute convention (backward = 3x fwd).
    simulator.setBackwardMultiplier(3.0);
    return simulator;
}

TEST(ExploreOptimizerDifferential, WinnersAgreeWithSimulatorWithinBands)
{
    auto simulator = makeSimulator();

    // DP8 (per-device batch 32): band 6 %.
    {
        const double analytic = optimizedStep(
            mapping::makeMapping(1, 1, 8, 1, 1, 1), 8, 256.0);
        const double simulated =
            simulator.simulateDataParallelStep(8, 32.0).stepTime;
        ASSERT_GT(simulated, 0.0);
        EXPECT_NEAR(analytic / simulated, 1.0, 0.06)
            << "DP8: analytic " << analytic << " s, sim "
            << simulated << " s";
    }

    // TP8 (batch 32): band 15 %.
    {
        const double analytic = optimizedStep(
            mapping::makeMapping(8, 1, 1, 1, 1, 1), 8, 32.0);
        const double simulated =
            simulator.simulateTensorParallelStep(8, 32.0).stepTime;
        ASSERT_GT(simulated, 0.0);
        EXPECT_NEAR(analytic / simulated, 1.0, 0.15)
            << "TP8: analytic " << analytic << " s, sim "
            << simulated << " s";
    }

    // PP8 / GPipe (microbatch 8, 32 microbatches): band 14 %.
    {
        const double analytic = optimizedStep(
            mapping::makeMapping(1, 8, 1, 1, 1, 1), 8, 256.0);
        const double simulated =
            simulator.simulateGPipeStep(8, 8.0, 32).stepTime;
        ASSERT_GT(simulated, 0.0);
        EXPECT_NEAR(analytic / simulated, 1.0, 0.14)
            << "PP8: analytic " << analytic << " s, sim "
            << simulated << " s";
    }
}

TEST(ExploreOptimizerDifferential, Top3StrategiesStayWithinTheirBands)
{
    // One combined search over the three schedule families at a
    // shared batch: every strategy the optimizer ranks into its
    // top-3 must agree with the simulator's prediction for that
    // family within the family's documented band.  (The *order* of
    // the three is not asserted: the families' analytic/sim skews
    // differ by up to 15 %, so cross-family ranking is not a stable
    // property — the per-family bands are.)
    const std::int64_t devices = 8;
    const double batch = 256.0;
    const std::vector<mapping::ParallelismConfig> candidates = {
        mapping::makeMapping(1, 1, 8, 1, 1, 1), // DP8
        mapping::makeMapping(8, 1, 1, 1, 1, 1), // TP8
        mapping::makeMapping(1, 8, 1, 1, 1, 1), // PP8
    };
    const core::AmpedModel model(
        model::presets::minGpt85M(), hw::presets::v100Sxm3(),
        gridEfficiency(), net::presets::hgx2(devices),
        validate::calibrations::nvswitchOptions(devices));
    Optimizer optimizer(model);
    OptimizerRequest request;
    request.batchSizes = {batch};
    request.jobTemplate.numBatchesOverride = 1.0;
    request.topK = 3;
    const auto result = optimizer.optimizeOver(candidates, request);
    ASSERT_EQ(result.topK.size(), 3u);

    auto simulator = makeSimulator();
    for (const auto &entry : result.topK) {
        double simulated = 0.0;
        double band = 0.0;
        if (entry.mapping.dp() == 8) {
            simulated =
                simulator.simulateDataParallelStep(8, 32.0).stepTime;
            band = 0.06;
        } else if (entry.mapping.tp() == 8) {
            simulated =
                simulator.simulateTensorParallelStep(8, batch)
                    .stepTime;
            band = 0.15;
        } else {
            simulated =
                simulator.simulateGPipeStep(8, 8.0, 32).stepTime;
            band = 0.14;
        }
        ASSERT_GT(simulated, 0.0);
        EXPECT_NEAR(entry.result.timePerBatch / simulated, 1.0, band)
            << entry.mapping.toString() << ": analytic "
            << entry.result.timePerBatch << " s, sim " << simulated
            << " s";
    }
}

} // namespace
} // namespace explore
} // namespace amped

/**
 * @file
 * Tests for the configuration-file loaders: model, accelerator and
 * system construction from key = value documents.
 */

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/units.hpp"
#include "explore/config_io.hpp"

namespace amped {
namespace explore {
namespace {

TEST(ConfigIoTest, ModelFromDocument)
{
    const auto config = KeyValueConfig::fromString(
        "name = doc-model\n"
        "layers = 24\n"
        "hidden = 1024\n"
        "heads = 16\n"
        "seq = 2048\n"
        "vocab = 50000\n");
    const auto model = modelFromConfig(config);
    EXPECT_EQ(model.name, "doc-model");
    EXPECT_EQ(model.numLayers, 24);
    EXPECT_EQ(model.ffnHiddenSize, 4096); // default 4 x hidden
    EXPECT_FALSE(model.moe.enabled());
}

TEST(ConfigIoTest, MoeModelFromDocument)
{
    const auto config = KeyValueConfig::fromString(
        "layers = 8\nhidden = 512\nheads = 8\nseq = 128\n"
        "vocab = 1000\nffn = 2048\nexperts = 16\n"
        "experts-per-token = 1\nmoe-interval = 4\n");
    const auto model = modelFromConfig(config);
    EXPECT_EQ(model.moe.numExperts, 16);
    EXPECT_EQ(model.moe.expertsPerToken, 1);
    EXPECT_EQ(model.numMoeLayers(), 2); // layers 3 and 7
}

TEST(ConfigIoTest, ModelRejectsTyposAndInvalid)
{
    EXPECT_THROW(modelFromConfig(KeyValueConfig::fromString(
                     "layres = 8\nhidden = 512\nheads = 8\n"
                     "seq = 128\nvocab = 1000\n")),
                 UserError); // typo "layres"
    EXPECT_THROW(modelFromConfig(KeyValueConfig::fromString(
                     "layers = 8\nhidden = 500\nheads = 7\n"
                     "seq = 128\nvocab = 1000\n")),
                 UserError); // heads do not divide hidden
}

TEST(ConfigIoTest, AcceleratorFromDocument)
{
    const auto config = KeyValueConfig::fromString(
        "name = doc-accel\n"
        "frequency-ghz = 1.41\n"
        "cores = 108\n"
        "mac-units = 4\n"
        "mac-width = 512\n"
        "nonlin-units = 192\n"
        "nonlin-width = 4\n"
        "memory-gb = 80\n"
        "offchip-gbits = 2400\n");
    const auto accel = acceleratorFromConfig(config);
    EXPECT_EQ(accel.name, "doc-accel");
    // Reconstructs the A100's 312 TFLOP/s peak.
    EXPECT_NEAR(accel.peakMacFlops().value() / 1e12, 312.0, 1.0);
    EXPECT_DOUBLE_EQ(accel.precisions.parameterBits.value(),
                     16.0); // default
    EXPECT_DOUBLE_EQ(accel.offChipBandwidth.value(), 2.4e12);
}

TEST(ConfigIoTest, AcceleratorPrecisionOverrides)
{
    const auto config = KeyValueConfig::fromString(
        "frequency-ghz = 1.8\ncores = 132\nmac-units = 4\n"
        "mac-width = 1024\nnonlin-units = 320\nnonlin-width = 4\n"
        "memory-gb = 80\noffchip-gbits = 3600\n"
        "precision-param = 8\nprecision-act = 8\n");
    const auto accel = acceleratorFromConfig(config);
    EXPECT_DOUBLE_EQ(accel.precisions.parameterBits.value(), 8.0);
    EXPECT_DOUBLE_EQ(accel.precisions.activationBits.value(), 8.0);
    EXPECT_DOUBLE_EQ(accel.precisions.nonlinearBits.value(), 16.0);
}

TEST(ConfigIoTest, SystemFromDocument)
{
    const auto config = KeyValueConfig::fromString(
        "name = doc-sys\n"
        "nodes = 16\n"
        "per-node = 4\n"
        "intra-gbits = 2400\n"
        "inter-gbits = 200\n"
        "pooled-fabric = 1\n");
    const auto sys = systemFromConfig(config);
    EXPECT_EQ(sys.totalAccelerators(), 64);
    EXPECT_EQ(sys.nicsPerNode, 4); // defaults to per-node
    EXPECT_TRUE(sys.interIsPooledFabric);
    EXPECT_DOUBLE_EQ(sys.intraBandwidth().value(), 2.4e12);
    EXPECT_DOUBLE_EQ(sys.perStreamInterBandwidth().value(), 2e11);
    // Default latencies applied.
    EXPECT_DOUBLE_EQ(sys.interLatency().value(), 1.2e-6);
}

TEST(ConfigIoTest, SystemRejectsMissingBandwidth)
{
    EXPECT_THROW(systemFromConfig(KeyValueConfig::fromString(
                     "nodes = 4\nper-node = 4\nintra-gbits = 100\n")),
                 UserError); // no inter-gbits
}

/** Runs @p fn, returning the UserError text it must throw. */
template <typename Fn>
std::string
diagnosticOf(Fn &&fn)
{
    try {
        fn();
    } catch (const UserError &error) {
        return error.what();
    }
    ADD_FAILURE() << "expected a UserError";
    return "";
}

TEST(ConfigIoTest, DiagnosticsNameTheProblem)
{
    // A missing required key is named.
    EXPECT_NE(
        diagnosticOf([] {
            modelFromConfig(KeyValueConfig::fromString(
                "hidden = 512\nheads = 8\nseq = 128\nvocab = 1000\n"));
        }).find("config: missing required key 'layers'"),
        std::string::npos);

    // A typo is rejected with the allowed-key list.
    const auto typo = diagnosticOf([] {
        modelFromConfig(KeyValueConfig::fromString(
            "layres = 8\nhidden = 512\nheads = 8\nseq = 128\n"
            "vocab = 1000\n"));
    });
    EXPECT_NE(typo.find("config: unknown key 'layres'"),
              std::string::npos)
        << typo;
    EXPECT_NE(typo.find("allowed keys:"), std::string::npos) << typo;
    EXPECT_NE(typo.find("layers"), std::string::npos) << typo;

    // A non-numeric value reports the key and the offending text.
    EXPECT_NE(
        diagnosticOf([] {
            modelFromConfig(KeyValueConfig::fromString(
                "layers = twelve\nhidden = 512\nheads = 8\n"
                "seq = 128\nvocab = 1000\n"));
        }).find("config key 'layers': 'twelve' is not an integer"),
        std::string::npos);

    // An unreadable file reports its path.
    EXPECT_NE(
        diagnosticOf([] {
            KeyValueConfig::fromFile("/nonexistent/model.conf");
        }).find("cannot open config file '/nonexistent/model.conf'"),
        std::string::npos);
}

TEST(ConfigIoTest, RejectsNanAndNonPositiveNumericValues)
{
    // NaN, negative and zero counts/frequencies/bandwidths must be
    // rejected at load time with the offending key named, not leak
    // into the model as NaN times or divisions by zero.

    // NaN frequency.
    EXPECT_NE(
        diagnosticOf([] {
            acceleratorFromConfig(KeyValueConfig::fromString(
                "frequency-ghz = nan\ncores = 8\nmac-units = 4\n"
                "mac-width = 64\nnonlin-units = 8\nnonlin-width = 4\n"
                "memory-gb = 16\noffchip-gbits = 100\n"));
        }).find("config key 'frequency-ghz'"),
        std::string::npos);

    // Zero core count.
    EXPECT_NE(
        diagnosticOf([] {
            acceleratorFromConfig(KeyValueConfig::fromString(
                "frequency-ghz = 1.0\ncores = 0\nmac-units = 4\n"
                "mac-width = 64\nnonlin-units = 8\nnonlin-width = 4\n"
                "memory-gb = 16\noffchip-gbits = 100\n"));
        }).find("config key 'cores'"),
        std::string::npos);

    // Negative bandwidth.
    EXPECT_NE(
        diagnosticOf([] {
            systemFromConfig(KeyValueConfig::fromString(
                "nodes = 4\nper-node = 4\nintra-gbits = -100\n"
                "inter-gbits = 200\n"));
        }).find("config key 'intra-gbits'"),
        std::string::npos);

    // Negative latency (latencies may be zero but not negative).
    EXPECT_NE(
        diagnosticOf([] {
            systemFromConfig(KeyValueConfig::fromString(
                "nodes = 4\nper-node = 4\nintra-gbits = 100\n"
                "inter-gbits = 200\ninter-latency-us = -1\n"));
        }).find("config key 'inter-latency-us'"),
        std::string::npos);

    // Zero layer count.
    EXPECT_NE(
        diagnosticOf([] {
            modelFromConfig(KeyValueConfig::fromString(
                "layers = 0\nhidden = 512\nheads = 8\nseq = 128\n"
                "vocab = 1000\n"));
        }).find("config key 'layers'"),
        std::string::npos);

    // NaN memory capacity.
    EXPECT_NE(
        diagnosticOf([] {
            acceleratorFromConfig(KeyValueConfig::fromString(
                "frequency-ghz = 1.0\ncores = 8\nmac-units = 4\n"
                "mac-width = 64\nnonlin-units = 8\nnonlin-width = 4\n"
                "memory-gb = nan\noffchip-gbits = 100\n"));
        }).find("config key 'memory-gb'"),
        std::string::npos);

    // Zero latency stays legal (a zero-latency link is meaningful).
    EXPECT_NO_THROW(systemFromConfig(KeyValueConfig::fromString(
        "nodes = 4\nper-node = 4\nintra-gbits = 100\n"
        "inter-gbits = 200\nintra-latency-us = 0\n")));
}

} // namespace
} // namespace explore
} // namespace amped

/**
 * @file
 * Tests for the fault-injection layer: FaultSpec validation,
 * deterministic FaultPlan realization, zero-plan bit-identity with
 * the fault-free engine (including every TrainingSimulator
 * schedule), straggler/link perturbation semantics, and failure
 * abort/accounting semantics.
 */

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "hw/presets.hpp"
#include "model/presets.hpp"
#include "sim/engine.hpp"
#include "sim/fault.hpp"
#include "sim/training_sim.hpp"

#include "sim_test_util.hpp"

namespace amped {
namespace sim {
namespace {

TEST(FaultSpecTest, DefaultSpecIsZeroAndValid)
{
    FaultSpec spec;
    EXPECT_NO_THROW(spec.validate());
    EXPECT_TRUE(spec.zero());
}

TEST(FaultSpecTest, ValidationNamesBadKnobs)
{
    const auto diagnostic = [](FaultSpec spec) {
        try {
            spec.validate();
        } catch (const UserError &error) {
            return std::string(error.what());
        }
        ADD_FAILURE() << "expected a UserError";
        return std::string();
    };

    FaultSpec bad_prob;
    bad_prob.stragglerProbability = 1.5;
    EXPECT_NE(diagnostic(bad_prob).find("stragglerProbability"),
              std::string::npos);

    FaultSpec bad_range;
    bad_range.stragglerSlowdownMin = 2.0;
    bad_range.stragglerSlowdownMax = 1.0;
    EXPECT_NE(diagnostic(bad_range).find("stragglerSlowdown"),
              std::string::npos);

    FaultSpec bad_jitter;
    bad_jitter.linkLatencyJitter = 1.0;
    EXPECT_NE(diagnostic(bad_jitter).find("linkLatencyJitter"),
              std::string::npos);

    FaultSpec bad_rate;
    bad_rate.failureRate = -1.0;
    EXPECT_NE(diagnostic(bad_rate).find("failureRate"),
              std::string::npos);

    FaultSpec bad_event;
    bad_event.failures.push_back(FailureEvent{0, -1.0});
    EXPECT_NE(diagnostic(bad_event).find("failure time"),
              std::string::npos);
}

TEST(FaultPlanTest, ZeroSpecRealizesToZeroPlan)
{
    TaskGraph graph;
    graph.addDevice("d0");
    graph.addChannel("c0");
    const auto plan = FaultPlan::generate(graph, FaultSpec{});
    EXPECT_TRUE(plan.zero());
    EXPECT_EQ(plan.durationMultiplier(0), 1.0);
    EXPECT_EQ(plan.latencyMultiplier(1), 1.0);
    EXPECT_TRUE(plan.failures().empty());
}

TEST(FaultPlanTest, MultipliersLandInTheConfiguredRanges)
{
    TaskGraph graph;
    for (int d = 0; d < 8; ++d)
        graph.addDevice("d" + std::to_string(d));
    for (int c = 0; c < 8; ++c)
        graph.addChannel("c" + std::to_string(c));

    FaultSpec spec;
    spec.stragglerProbability = 1.0;
    spec.stragglerSlowdownMin = 1.5;
    spec.stragglerSlowdownMax = 2.5;
    spec.linkDegradationProbability = 1.0;
    spec.linkSlowdownMin = 3.0;
    spec.linkSlowdownMax = 4.0;
    spec.linkLatencyJitter = 0.25;
    const auto plan = FaultPlan::generate(graph, spec);

    for (ResourceId r = 0; r < 8; ++r) {
        EXPECT_GE(plan.durationMultiplier(r), 1.5);
        EXPECT_LE(plan.durationMultiplier(r), 2.5);
        // Compute latency is never jittered.
        EXPECT_EQ(plan.latencyMultiplier(r), 1.0);
    }
    for (ResourceId r = 8; r < 16; ++r) {
        EXPECT_GE(plan.durationMultiplier(r), 3.0);
        EXPECT_LE(plan.durationMultiplier(r), 4.0);
        EXPECT_GE(plan.latencyMultiplier(r), 0.75);
        EXPECT_LE(plan.latencyMultiplier(r), 1.25);
    }
    EXPECT_FALSE(plan.zero());
}

TEST(FaultPlanTest, ExplicitFailureMustNameAGraphResource)
{
    TaskGraph graph;
    graph.addDevice("d0");
    FaultSpec spec;
    spec.failures.push_back(FailureEvent{5, 1.0});
    EXPECT_THROW(FaultPlan::generate(graph, spec), UserError);
}

TEST(FaultPlanTest, SampledFailuresRespectTheHorizon)
{
    TaskGraph graph;
    for (int d = 0; d < 64; ++d)
        graph.addDevice("d" + std::to_string(d));
    FaultSpec spec;
    spec.failureRate = 1.0; // MTBF of 1 s: most devices fail early.
    spec.failureHorizon = 2.0;
    const auto plan = FaultPlan::generate(graph, spec);
    EXPECT_FALSE(plan.failures().empty());
    double previous = 0.0;
    for (const auto &failure : plan.failures()) {
        EXPECT_GE(failure.time, 0.0);
        EXPECT_LT(failure.time, spec.failureHorizon);
        EXPECT_GE(failure.time, previous); // sorted by time
        previous = failure.time;
    }
}

TEST(FaultEngineTest, ZeroPlanIsBitIdenticalToFaultFreeRun)
{
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        Rng rng(seed);
        auto rg = testutil::makeRandomGraph(rng);
        Engine engine;
        const auto plain = engine.run(rg.graph);
        const auto faulted =
            engine.run(rg.graph, FaultPlan(rg.graph));
        EXPECT_EQ(testutil::traceFingerprint(plain),
                  testutil::traceFingerprint(faulted.result))
            << "seed " << seed;
        EXPECT_FALSE(faulted.failure.failed);
        EXPECT_EQ(faulted.failure.completedTasks,
                  rg.graph.taskCount());
        EXPECT_EQ(faulted.failure.abortedTasks, 0u);
        EXPECT_EQ(faulted.failure.wastedWallSeconds.value(), 0.0);
    }
}

TEST(FaultEngineTest, StragglerMultiplierScalesCompute)
{
    TaskGraph graph;
    const auto dev = graph.addDevice("d0");
    graph.addCompute(dev, Seconds{1.0}, "work");
    FaultSpec spec;
    spec.stragglerProbability = 1.0;
    spec.stragglerSlowdownMin = 2.0;
    spec.stragglerSlowdownMax = 2.0;
    const auto plan = FaultPlan::generate(graph, spec);
    Engine engine;
    const auto outcome = engine.run(graph, plan);
    EXPECT_DOUBLE_EQ(outcome.result.makespan, 2.0);
    EXPECT_FALSE(outcome.failure.failed);
}

TEST(FaultEngineTest, LinkDegradationScalesSerializationAndLatency)
{
    TaskGraph graph;
    const auto ch = graph.addChannel("c0");
    // 1 s serialization + 0.5 s latency fault-free.
    graph.addTransfer(ch, Bits{1e9}, BitsPerSecond{1e9}, Seconds{0.5}, "xfer");
    FaultSpec spec;
    spec.linkDegradationProbability = 1.0;
    spec.linkSlowdownMin = 3.0;
    spec.linkSlowdownMax = 3.0;
    spec.linkLatencyJitter = 0.2;
    const auto plan = FaultPlan::generate(graph, spec);
    Engine engine;
    const auto outcome = engine.run(graph, plan);
    // 3 s serialization plus latency in [0.4, 0.6].
    EXPECT_GE(outcome.result.makespan, 3.4);
    EXPECT_LE(outcome.result.makespan, 3.6);
}

TEST(FaultEngineTest, FailureAbortsInFlightAndTruncatesInterval)
{
    TaskGraph graph;
    const auto dev = graph.addDevice("d0");
    const auto a = graph.addCompute(dev, Seconds{1.0}, "a");
    const auto b = graph.addCompute(dev, Seconds{1.0}, "b");
    graph.addDependency(a, b);
    FaultSpec spec;
    spec.failures.push_back(FailureEvent{dev, 0.5});
    const auto plan = FaultPlan::generate(graph, spec);
    Engine engine;
    const auto outcome = engine.run(graph, plan);

    EXPECT_TRUE(outcome.failure.failed);
    EXPECT_EQ(outcome.failure.failuresApplied, 1u);
    EXPECT_DOUBLE_EQ(outcome.failure.firstFailureTime, 0.5);
    EXPECT_EQ(outcome.failure.firstFailedResource, dev);
    EXPECT_EQ(outcome.failure.completedTasks, 0u);
    EXPECT_EQ(outcome.failure.abortedTasks, 1u);  // a, in flight
    EXPECT_EQ(outcome.failure.unreachedTasks, 1u); // b, never ready
    EXPECT_DOUBLE_EQ(outcome.failure.lostBusySeconds.value(), 0.5);
    EXPECT_DOUBLE_EQ(outcome.failure.wastedWallSeconds.value(), 0.5);

    const auto &intervals = outcome.result.resources[dev].intervals;
    ASSERT_EQ(intervals.size(), 1u);
    EXPECT_DOUBLE_EQ(intervals[0].start, 0.0);
    EXPECT_DOUBLE_EQ(intervals[0].end, 0.5); // truncated at failure
    EXPECT_DOUBLE_EQ(outcome.result.resources[dev].busyTime, 0.5);
}

TEST(FaultEngineTest, FailureDropsQueuedTasks)
{
    TaskGraph graph;
    const auto dev = graph.addDevice("d0");
    graph.addCompute(dev, Seconds{1.0}, "t0");
    graph.addCompute(dev, Seconds{1.0}, "t1"); // queued behind t0
    FaultSpec spec;
    spec.failures.push_back(FailureEvent{dev, 0.25});
    const auto plan = FaultPlan::generate(graph, spec);
    Engine engine;
    const auto outcome = engine.run(graph, plan);
    EXPECT_TRUE(outcome.failure.failed);
    EXPECT_EQ(outcome.failure.completedTasks, 0u);
    EXPECT_EQ(outcome.failure.abortedTasks, 2u);
    EXPECT_EQ(outcome.failure.unreachedTasks, 0u);
}

TEST(FaultEngineTest, SurvivingResourcesKeepExecuting)
{
    TaskGraph graph;
    const auto d0 = graph.addDevice("d0");
    const auto d1 = graph.addDevice("d1");
    graph.addCompute(d0, Seconds{2.0}, "doomed");
    graph.addCompute(d1, Seconds{3.0}, "survivor");
    FaultSpec spec;
    spec.failures.push_back(FailureEvent{d0, 1.0});
    const auto plan = FaultPlan::generate(graph, spec);
    Engine engine;
    const auto outcome = engine.run(graph, plan);
    EXPECT_TRUE(outcome.failure.failed);
    EXPECT_EQ(outcome.failure.completedTasks, 1u);
    EXPECT_EQ(outcome.failure.abortedTasks, 1u);
    // The survivor's delivery at t = 3 sets the partial makespan,
    // which is what a restart would have to redo.
    EXPECT_DOUBLE_EQ(outcome.result.makespan, 3.0);
    EXPECT_DOUBLE_EQ(outcome.failure.wastedWallSeconds.value(), 3.0);
}

TEST(FaultEngineTest, FailureAfterCompletionIsBenign)
{
    TaskGraph graph;
    const auto dev = graph.addDevice("d0");
    graph.addCompute(dev, Seconds{1.0}, "work");
    FaultSpec spec;
    spec.failures.push_back(FailureEvent{dev, 10.0});
    const auto plan = FaultPlan::generate(graph, spec);
    Engine engine;
    const auto outcome = engine.run(graph, plan);
    EXPECT_FALSE(outcome.failure.failed);
    EXPECT_EQ(outcome.failure.failuresApplied, 1u);
    EXPECT_EQ(outcome.failure.completedTasks, 1u);
    EXPECT_DOUBLE_EQ(outcome.failure.wastedWallSeconds.value(), 0.0);
}

TEST(FaultEngineTest, CutThroughMessageSurvivesChannelFailure)
{
    // The channel is released at serialization end; a failure during
    // the in-flight latency window must not revoke the delivery.
    TaskGraph graph;
    const auto ch = graph.addChannel("c0");
    graph.addTransfer(ch, Bits{1e9}, BitsPerSecond{1e9}, Seconds{1.0}, "xfer"); // ser 1 s, lat 1 s
    FaultSpec spec;
    spec.failures.push_back(FailureEvent{ch, 1.5});
    const auto plan = FaultPlan::generate(graph, spec);
    Engine engine;
    const auto outcome = engine.run(graph, plan);
    EXPECT_FALSE(outcome.failure.failed);
    EXPECT_EQ(outcome.failure.completedTasks, 1u);
    EXPECT_DOUBLE_EQ(outcome.result.makespan, 2.0);
}

TEST(FaultEngineTest, PlanForDifferentGraphIsRejected)
{
    TaskGraph small;
    small.addDevice("d0");
    TaskGraph big;
    big.addDevice("d0");
    big.addDevice("d1");
    big.addCompute(0, Seconds{1.0}, "t");
    Engine engine;
    EXPECT_THROW(engine.run(big, FaultPlan(small)), UserError);
}

TEST(FaultEngineTest, CycleStillReportedUnderZeroFaultPlan)
{
    TaskGraph graph;
    const auto dev = graph.addDevice("d0");
    const auto a = graph.addCompute(dev, Seconds{1.0}, "a");
    const auto b = graph.addCompute(dev, Seconds{1.0}, "b");
    graph.addDependency(a, b);
    graph.addDependency(b, a);
    Engine engine;
    EXPECT_THROW(engine.run(graph, FaultPlan(graph)), UserError);
}

// ---------------------------------------------------------------
// TrainingSimulator integration.
// ---------------------------------------------------------------

TrainingSimulator
makeSim()
{
    return TrainingSimulator(
        model::presets::tinyTest(), hw::presets::tinyTest(),
        hw::MicrobatchEfficiency(0.8, 4.0),
        net::LinkConfig{"intra", Seconds{1e-6}, BitsPerSecond{2.4e12}});
}

TEST(FaultSimulatorTest, ZeroSpecReproducesEverySchedule)
{
    // Acceptance criterion: with a zero-fault FaultPlan every
    // TrainingSimulator schedule reproduces the fault-free
    // SimOutcome exactly (bit-identical step time and trace).
    const net::LinkConfig inter{"inter", Seconds{1.2e-6}, BitsPerSecond{2e11}};
    auto plain = makeSim();
    auto faulted = makeSim();
    faulted.setFaultSpec(FaultSpec{});
    ASSERT_TRUE(faulted.faultSpec().has_value());
    ASSERT_TRUE(faulted.faultSpec()->zero());

    auto moe_cfg = model::presets::tinyTest();
    moe_cfg.moe.numExperts = 4;
    moe_cfg.moe.moeLayerInterval = 2;
    TrainingSimulator moe_plain(
        moe_cfg, hw::presets::tinyTest(),
        hw::MicrobatchEfficiency(0.8, 4.0),
        net::LinkConfig{"intra", Seconds{1e-6}, BitsPerSecond{2.4e12}});
    TrainingSimulator moe_faulted(
        moe_cfg, hw::presets::tinyTest(),
        hw::MicrobatchEfficiency(0.8, 4.0),
        net::LinkConfig{"intra", Seconds{1e-6}, BitsPerSecond{2.4e12}});
    moe_faulted.setFaultSpec(FaultSpec{});

    const std::vector<std::pair<std::string,
                                std::pair<SimOutcome, SimOutcome>>>
        runs = {
            {"dp",
             {plain.simulateDataParallelStep(4, 8.0),
              faulted.simulateDataParallelStep(4, 8.0)}},
            {"gpipe",
             {plain.simulateGPipeStep(2, 4.0, 4),
              faulted.simulateGPipeStep(2, 4.0, 4)}},
            {"tp",
             {plain.simulateTensorParallelStep(4, 8.0),
              faulted.simulateTensorParallelStep(4, 8.0)}},
            {"hdp",
             {plain.simulateHierarchicalDataParallelStep(2, 2, 8.0,
                                                         inter),
              faulted.simulateHierarchicalDataParallelStep(2, 2, 8.0,
                                                           inter)}},
            {"dpxpp",
             {plain.simulateDataPipelineStep(2, 2, 4.0, 2, inter),
              faulted.simulateDataPipelineStep(2, 2, 4.0, 2, inter)}},
            {"a2a",
             {plain.simulateAllToAll(4, 1e6, Bits{16.0}, inter),
              faulted.simulateAllToAll(4, 1e6, Bits{16.0}, inter)}},
            {"moe",
             {moe_plain.simulateMoeStep(2, 8.0, inter),
              moe_faulted.simulateMoeStep(2, 8.0, inter)}},
        };
    for (const auto &[name, pair] : runs) {
        const auto &[reference, zero_fault] = pair;
        EXPECT_EQ(reference.stepTime, zero_fault.stepTime)
            << name << ": step time must be bit-identical";
        EXPECT_EQ(testutil::traceFingerprint(reference.raw),
                  testutil::traceFingerprint(zero_fault.raw))
            << name;
        EXPECT_FALSE(zero_fault.failure.failed) << name;
        EXPECT_EQ(zero_fault.failure.abortedTasks, 0u) << name;
        EXPECT_EQ(reference.peakMicrobatchesInFlight,
                  zero_fault.peakMicrobatchesInFlight)
            << name;
    }
}

TEST(FaultSimulatorTest, StragglersStretchTheStep)
{
    auto sim = makeSim();
    const auto reference = sim.simulateDataParallelStep(4, 8.0);
    FaultSpec spec;
    spec.stragglerProbability = 1.0;
    spec.stragglerSlowdownMin = 2.0;
    spec.stragglerSlowdownMax = 2.0;
    sim.setFaultSpec(spec);
    const auto straggled = sim.simulateDataParallelStep(4, 8.0);
    EXPECT_FALSE(straggled.failure.failed);
    EXPECT_GT(straggled.stepTime, reference.stepTime);
    // All-compute phases double; the ring all-reduce does not, so
    // the step lands strictly below 2x.
    EXPECT_LT(straggled.stepTime, 2.0 * reference.stepTime + 1e-12);
}

TEST(FaultSimulatorTest, DeviceFailureReportsNotThrows)
{
    auto sim = makeSim();
    FaultSpec spec;
    // Device resource 0 is the first resource every schedule adds.
    spec.failures.push_back(FailureEvent{0, 1e-9});
    sim.setFaultSpec(spec);
    const auto outcome = sim.simulateDataParallelStep(4, 8.0);
    EXPECT_TRUE(outcome.failure.failed);
    EXPECT_EQ(outcome.failure.firstFailedResource, 0);
    EXPECT_GT(outcome.failure.abortedTasks
                  + outcome.failure.unreachedTasks,
              0u);
}

TEST(FaultSimulatorTest, FailedGPipeStepSkipsResidencyPostProcessing)
{
    auto sim = makeSim();
    FaultSpec spec;
    spec.failures.push_back(FailureEvent{0, 1e-9});
    sim.setFaultSpec(spec);
    // Must not throw despite missing fwd/bwd intervals.
    const auto outcome = sim.simulateGPipeStep(2, 4.0, 4);
    EXPECT_TRUE(outcome.failure.failed);
    EXPECT_TRUE(outcome.peakMicrobatchesInFlight.empty());
}

TEST(FaultSimulatorTest, ClearFaultSpecRestoresFaultFreeRuns)
{
    auto sim = makeSim();
    const auto reference = sim.simulateDataParallelStep(2, 8.0);
    FaultSpec spec;
    spec.stragglerProbability = 1.0;
    spec.stragglerSlowdownMin = 3.0;
    spec.stragglerSlowdownMax = 3.0;
    sim.setFaultSpec(spec);
    EXPECT_GT(sim.simulateDataParallelStep(2, 8.0).stepTime,
              reference.stepTime);
    sim.clearFaultSpec();
    EXPECT_EQ(sim.simulateDataParallelStep(2, 8.0).stepTime,
              reference.stepTime);
}

} // namespace
} // namespace sim
} // namespace amped

/**
 * @file
 * Future-systems what-if: sweep the inter-node bandwidth from
 * today's InfiniBand to optical-substrate levels and find where
 * training becomes compute-bound — the design question behind the
 * paper's Case Study III, as a standalone tool.
 *
 * Usage:
 *   optical_future [model] [batch]
 *     model: 145B (default) | glam
 *     batch: global batch size (default 8192)
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "common/parse_num.hpp"
#include "common/table.hpp"
#include "common/error.hpp"
#include "common/units.hpp"
#include "core/amped_model.hpp"
#include "hw/presets.hpp"
#include "model/presets.hpp"
#include "net/system_config.hpp"
#include "validate/calibrations.hpp"

int
main(int argc, char **argv)
{
    using namespace amped;

    const std::string model_name = argc > 1 ? argv[1] : "145B";
    const double batch = argc > 2 ? amped::parseDouble(argv[2]) : 8192.0;

    const bool is_moe = model_name == "glam";
    const auto model_cfg = is_moe ? model::presets::glamMoE()
                                  : model::presets::megatron145B();
    const auto accel =
        is_moe ? hw::presets::h100() : hw::presets::a100();

    try {
        std::cout << "=== inter-node bandwidth sweep: " << model_cfg.name
                  << ", batch " << batch << " ===\n\n";
        TextTable table({"per-accelerator inter BW", "days",
                         "comm share", "speedup vs 100 Gbit/s"});
        double baseline = 0.0;
        for (double gbits : {100.0, 200.0, 400.0, 800.0, 1600.0,
                             3600.0, 7200.0, 14400.0}) {
            net::SystemConfig system;
            system.name = "sweep";
            system.numNodes = 128;
            system.acceleratorsPerNode = 8;
            system.intraLink = is_moe ? net::presets::nvlinkH100()
                                      : net::presets::nvlinkA100();
            system.interLink = net::LinkConfig{
                "swept-inter", Seconds{1e-6},
                units::gigabitsPerSecondBw(gbits)};
            system.nicsPerNode = 8;
            system.interIsPooledFabric = gbits > 400.0;

            core::AmpedModel amped(
                model_cfg, accel,
                is_moe ? validate::calibrations::caseStudy3()
                       : validate::calibrations::caseStudy1(),
                system, validate::calibrations::caseStudyOptions());

            core::TrainingJob job;
            job.batchSize = batch;
            job.totalTrainingTokens = 300e9;

            // TP fills the node; DP spans the nodes.
            const auto mapping =
                mapping::makeMapping(8, 1, 1, 1, 1, 128);
            const auto result = amped.evaluate(mapping, job);
            if (baseline == 0.0)
                baseline = result.totalTime;
            table.addRow(
                {units::formatBandwidth(
                     units::gigabitsPerSecond(gbits)),
                 units::formatFixed(result.trainingDays(), 1),
                 units::formatFixed(
                     100.0 * result.perBatch.communication() /
                         result.perBatch.total(),
                     1) +
                     " %",
                 units::formatFixed(baseline / result.totalTime, 2) +
                     "x"});
        }
        table.print(std::cout);
        std::cout << "\nOnce the communication share flattens, extra "
                     "bandwidth buys nothing: the system is\n"
                     "compute-bound and only a faster accelerator "
                     "(or better eff(ub)) helps — the paper's\n"
                     "Case Study III conclusion.\n";
    } catch (const UserError &error) {
        std::cerr << "error: " << error.what() << '\n';
        return 1;
    }
    return 0;
}

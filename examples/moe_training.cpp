/**
 * @file
 * Mixture-of-Experts analysis: compare a GLaM-class MoE model
 * against a dense model of equal *active* compute, and show where
 * the MoE all-to-all time goes as the expert count grows — the
 * workload behind the paper's Case Study III.
 *
 * Usage:
 *   moe_training [batch]
 *     batch: global batch size (default 8192)
 */

#include <cstdlib>
#include <iostream>

#include "common/parse_num.hpp"
#include "common/table.hpp"
#include "common/error.hpp"
#include "common/units.hpp"
#include "core/amped_model.hpp"
#include "hw/presets.hpp"
#include "model/presets.hpp"
#include "net/system_config.hpp"
#include "validate/calibrations.hpp"

int
main(int argc, char **argv)
{
    using namespace amped;

    const double batch = argc > 1 ? amped::parseDouble(argv[1]) : 8192.0;
    const auto system = net::presets::h100Cluster3072();
    const auto accel = hw::presets::h100();
    const auto eff = validate::calibrations::caseStudy3();
    const auto mapping = mapping::makeMapping(
        8, 1, 1, 1, 1, system.numNodes);

    core::TrainingJob job;
    job.batchSize = batch;
    job.totalTrainingTokens = 300e9;

    try {
        std::cout << "=== MoE expert-count sweep (GLaM-style, 3072 "
                     "H100s, batch " << batch << ") ===\n\n";
        TextTable table({"experts", "params", "days", "MoE comm share",
                         "tokens/s"});
        for (std::int64_t experts : {0, 8, 16, 32, 64, 128}) {
            auto cfg = model::presets::glamMoE();
            if (experts == 0) {
                cfg.moe = model::MoEConfig{}; // dense baseline
                cfg.name = "GLaM-dense";
            } else {
                cfg.moe.numExperts = experts;
            }
            cfg.validate();

            core::AmpedModel amped(
                cfg, accel, eff, system,
                validate::calibrations::nvswitchOptions(8));
            const auto result = amped.evaluate(mapping, job);
            table.addRow(
                {std::to_string(experts),
                 units::formatCount(cfg.parameterCount()),
                 units::formatFixed(result.trainingDays(), 2),
                 units::formatFixed(100.0 * result.perBatch.commMoe /
                                        result.perBatch.total(),
                                    1) +
                     " %",
                 units::formatCount(result.tokensPerSecond)});
        }
        table.print(std::cout);
        std::cout
            << "\nThe expert count multiplies the parameter count "
               "while the active compute per token\n(top-2 routing) "
               "and therefore the training time stay nearly flat — "
               "the MoE premise.\nThe price is the all-to-all "
               "dispatch/combine share, which the paper's optical\n"
               "substrates attack (see bench/fig11_optical_"
               "substrate).\n";
    } catch (const UserError &error) {
        std::cerr << "error: " << error.what() << '\n';
        return 1;
    }
    return 0;
}

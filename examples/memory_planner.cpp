/**
 * @file
 * Memory planner: for a model and cluster, show which parallelism
 * mappings actually fit device memory, how ZeRO stages change that,
 * and the fastest *feasible* configuration — the memory-constraint
 * extension the paper names as future work (Sec. IX).
 *
 * Usage:
 *   memory_planner [model] [batch]
 *     model: 145B (default) | gpt3 | 1T
 *     batch: global batch size (default 2048)
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "common/parse_num.hpp"
#include "common/error.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/memory_model.hpp"
#include "explore/explorer.hpp"
#include "hw/presets.hpp"
#include "model/presets.hpp"
#include "net/system_config.hpp"
#include "validate/calibrations.hpp"

namespace {

amped::model::TransformerConfig
pickModel(const std::string &name)
{
    using namespace amped::model::presets;
    if (name == "gpt3")
        return gpt3_175B();
    if (name == "1T")
        return megatron1T();
    return megatron145B();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace amped;

    const std::string model_name = argc > 1 ? argv[1] : "145B";
    const double batch = argc > 2 ? amped::parseDouble(argv[2]) : 2048.0;
    const auto model_cfg = pickModel(model_name);
    const auto accel = hw::presets::a100();
    const auto system = net::presets::a100Cluster1024();

    try {
        core::AmpedModel amped(
            model_cfg, accel, validate::calibrations::caseStudy1(),
            system, validate::calibrations::caseStudyOptions());

        core::TrainingJob job;
        job.batchSize = batch;
        job.totalTrainingTokens = 300e9;

        std::cout << "=== memory-aware mapping search: "
                  << model_cfg.name << " ("
                  << units::formatCount(model_cfg.parameterCount())
                  << " params), batch " << batch << ", "
                  << system.name << " ===\n\n";

        // Footprint of a few representative mappings.
        {
            core::MemoryModel mm(model::OpCounter(model_cfg), accel);
            TextTable table({"mapping", "params", "grads", "optimizer",
                             "activations", "total", "fits 80 GB?"});
            for (const auto &m :
                 {mapping::makeMapping(1, 1, 8, 1, 1, 128),
                  mapping::makeMapping(8, 1, 1, 1, 1, 128),
                  mapping::makeMapping(8, 1, 1, 1, 16, 8),
                  mapping::makeMapping(8, 1, 1, 1, 128, 1)}) {
                const double ub =
                    job.microbatching.microbatchSize(batch, m);
                const auto fp = mm.footprint(m, batch, ub);
                auto gb = [](double bytes) {
                    return units::formatFixed(bytes / 1e9, 1) + " GB";
                };
                table.addRow({m.toString(), gb(fp.parameterBytes),
                              gb(fp.gradientBytes),
                              gb(fp.optimizerBytes),
                              gb(fp.activationBytes),
                              gb(fp.totalBytes()),
                              mm.fits(m, batch, ub) ? "yes" : "NO"});
            }
            table.print(std::cout);
            std::cout << '\n';
        }

        // ZeRO-stage impact on one DP-heavy mapping.
        {
            const auto m = mapping::makeMapping(8, 1, 1, 1, 1, 128);
            const double ub =
                job.microbatching.microbatchSize(batch, m);
            TextTable table({"ZeRO stage", "total footprint",
                             "fits 80 GB?"});
            for (auto stage :
                 {core::ZeroStage::none, core::ZeroStage::optimizer,
                  core::ZeroStage::gradients,
                  core::ZeroStage::parameters}) {
                core::MemoryOptions options;
                options.zeroStage = stage;
                core::MemoryModel mm(model::OpCounter(model_cfg),
                                     accel, options);
                const auto fp = mm.footprint(m, batch, ub);
                table.addRow(
                    {core::zeroStageName(stage),
                     units::formatFixed(fp.totalBytes() / 1e9, 1) +
                         " GB",
                     mm.fits(m, batch, ub) ? "yes" : "NO"});
            }
            std::cout << "ZeRO on " << m.toString() << ":\n";
            table.print(std::cout);
            std::cout << '\n';
        }

        // Fastest mapping with and without the memory screen.
        explore::Explorer explorer(amped);
        auto unscreened = explorer.sweepAll({batch}, job);
        explorer.setMemoryModel(
            core::MemoryModel(model::OpCounter(model_cfg), accel));
        auto screened = explorer.sweepAll({batch}, job);

        const auto best_any = explore::Explorer::best(unscreened);
        const auto best_fit = explore::Explorer::best(screened);
        std::cout << "mappings: " << unscreened.entries.size()
                  << " evaluable, " << screened.entries.size()
                  << " fit device memory (" << screened.memorySkipped
                  << " rejected by the memory screen)\n";
        if (best_any) {
            std::cout << "fastest ignoring memory:    "
                      << best_any->mapping.toString() << "  ("
                      << units::formatDuration(
                             best_any->result.totalTime)
                      << ")\n";
        }
        if (best_fit) {
            std::cout << "fastest that actually fits: "
                      << best_fit->mapping.toString() << "  ("
                      << units::formatDuration(
                             best_fit->result.totalTime)
                      << ")\n";
        } else {
            std::cout << "no mapping fits at this batch size - raise "
                         "TP/PP, enable ZeRO, or shrink the batch\n";
        }
    } catch (const UserError &error) {
        std::cerr << "error: " << error.what() << '\n';
        return 1;
    }
    return 0;
}

/**
 * @file
 * Quickstart: predict the training time of GPT-3 175B on a 1024-GPU
 * A100 cluster with the canonical Megatron mapping (TP inside each
 * node, pipeline and data parallelism across nodes), and print the
 * per-phase breakdown.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <iostream>

#include "common/units.hpp"
#include "core/amped_model.hpp"
#include "explore/explorer.hpp"
#include "hw/presets.hpp"
#include "model/presets.hpp"
#include "net/system_config.hpp"

int
main()
{
    using namespace amped;

    // 1. What is being trained: GPT-3 175B, 300 B tokens, batch 1536.
    const auto gpt3 = model::presets::gpt3_175B();
    core::TrainingJob job;
    job.batchSize = 1536.0;
    job.totalTrainingTokens = 300e9;

    // 2. On what: 128 nodes x 8 A100, NVLink inside, HDR InfiniBand
    //    between nodes.
    const auto system = net::presets::a100Cluster1024();
    const auto a100 = hw::presets::a100();

    // 3. Compute efficiency vs microbatch size: eff(ub) =
    //    a ub / (b + ub), fitted from measurements in practice.
    const hw::MicrobatchEfficiency efficiency(0.9, 4.0);

    // 4. The parallelism mapping: TP8 intra-node, PP16 x DP8 across
    //    the 128 nodes.
    const auto mapping = mapping::makeMapping(8, 1, 1, 1, 16, 8);

    // 5. Evaluate.
    core::AmpedModel amped(gpt3, a100, efficiency, system);
    const auto result = amped.evaluate(mapping, job);

    std::cout << "model:           " << gpt3.name << " ("
              << units::formatCount(gpt3.parameterCount())
              << " parameters)\n"
              << "system:          " << system.name << " ("
              << system.totalAccelerators() << " accelerators)\n"
              << "mapping:         " << mapping.toString() << "\n"
              << "microbatch size: " << result.microbatchSize
              << " (eff "
              << units::formatFixed(result.efficiency, 2) << ")\n"
              << "time per batch:  "
              << units::formatDuration(result.timePerBatch) << "\n"
              << "training time:   "
              << units::formatDuration(result.totalTime) << " for "
              << units::formatCount(job.totalTrainingTokens)
              << " tokens\n"
              << "throughput:      "
              << units::formatFlops(result.achievedFlopsPerGpu)
              << " per GPU ("
              << units::formatCount(result.tokensPerSecond)
              << " tokens/s)\n\n"
              << "per-batch breakdown:\n"
              << explore::breakdownTable(result);
    return 0;
}

/**
 * @file
 * Design-space explorer: enumerate every valid parallelism mapping
 * of a cluster for a chosen model and batch size, rank them by
 * predicted training time, and show the best configurations — the
 * paper's Case Study I workflow as a command-line tool.
 *
 * Usage:
 *   parallelism_explorer [model] [batch] [nodes] [accs_per_node]
 *                        [top_k] [threads]
 *     model: 145B | 310B | 530B | 1T | gpt3 (default 145B)
 *     batch: global batch size (default 8192)
 *     nodes / accs_per_node: cluster shape (default 128 x 8)
 *     top_k: how many mappings to print (default 10)
 *     threads: sweep worker threads (default 0 = AMPED_THREADS or
 *              all cores; the ranking is identical either way)
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "common/parse_num.hpp"
#include "common/error.hpp"
#include "common/units.hpp"
#include "explore/explorer.hpp"
#include "hw/presets.hpp"
#include "model/presets.hpp"
#include "net/system_config.hpp"
#include "validate/calibrations.hpp"

namespace {

amped::model::TransformerConfig
pickModel(const std::string &name)
{
    using namespace amped::model::presets;
    if (name == "310B")
        return megatron310B();
    if (name == "530B")
        return megatron530B();
    if (name == "1T")
        return megatron1T();
    if (name == "gpt3")
        return gpt3_175B();
    return megatron145B();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace amped;

    const std::string model_name = argc > 1 ? argv[1] : "145B";
    const double batch = argc > 2 ? amped::parseDouble(argv[2]) : 8192.0;
    const std::int64_t nodes = argc > 3 ? std::atoll(argv[3]) : 128;
    const std::int64_t per_node = argc > 4 ? std::atoll(argv[4]) : 8;
    const std::size_t top_k =
        argc > 5 ? static_cast<std::size_t>(std::atoll(argv[5])) : 10;
    const unsigned threads =
        argc > 6 ? static_cast<unsigned>(std::atoll(argv[6])) : 0;

    const auto model_cfg = pickModel(model_name);

    net::SystemConfig system;
    system.name = std::to_string(nodes) + "x" +
                  std::to_string(per_node) + " A100 / HDR";
    system.numNodes = nodes;
    system.acceleratorsPerNode = per_node;
    system.intraLink = net::presets::nvlinkA100();
    system.interLink = net::presets::hdrInfiniband();
    system.nicsPerNode = per_node;

    try {
        core::AmpedModel amped(
            model_cfg, hw::presets::a100(),
            validate::calibrations::caseStudy1(), system,
            validate::calibrations::caseStudyOptions());
        explore::Explorer explorer(amped);
        explorer.setThreads(threads);

        core::TrainingJob job;
        job.batchSize = batch;
        job.totalTrainingTokens = 300e9;

        std::cout << "exploring " << model_cfg.name << " on "
                  << system.name << ", batch " << batch << " ...\n";
        auto sweep = explorer.sweepAll({batch}, job);
        std::cout << sweep.entries.size() << " feasible mappings, "
                  << sweep.skipped << " skipped (batch too small)\n\n";

        explore::Explorer::sortByTime(sweep.entries);
        if (sweep.entries.size() > top_k)
            sweep.entries.resize(top_k);
        std::cout << "top " << sweep.entries.size()
                  << " mappings by training time:\n"
                  << explore::sweepTable(sweep.entries) << '\n';

        if (!sweep.entries.empty()) {
            std::cout << "breakdown of the best mapping ("
                      << sweep.entries.front().mapping.toString()
                      << "):\n"
                      << explore::breakdownTable(
                             sweep.entries.front().result);
        }
    } catch (const UserError &error) {
        std::cerr << "error: " << error.what() << '\n';
        return 1;
    }
    return 0;
}

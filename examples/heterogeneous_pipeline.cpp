/**
 * @file
 * Heterogeneous-pipeline walkthrough (the extension named in the
 * paper's conclusion): mix V100 and P100 stages in one pipeline,
 * compare the naive even layer split against the optimizer's
 * balanced split, and show the bottleneck analysis.
 *
 * Usage:
 *   heterogeneous_pipeline [fast_stages] [slow_stages]
 *     default: 2 V100 stages + 2 P100 stages.
 */

#include <cstdlib>
#include <iostream>
#include <vector>

#include "common/error.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/heterogeneous.hpp"
#include "hw/presets.hpp"
#include "model/presets.hpp"

int
main(int argc, char **argv)
{
    using namespace amped;

    const std::int64_t fast = argc > 1 ? std::atoll(argv[1]) : 2;
    const std::int64_t slow = argc > 2 ? std::atoll(argv[2]) : 2;

    try {
        require(fast + slow >= 1, "need at least one stage");
        const auto model_cfg = model::presets::minGptPipeline();
        model::OpCounter counter(model_cfg);
        require(fast + slow <= model_cfg.numLayers,
                "more stages than layers");

        auto make_stage = [](const hw::AcceleratorConfig &accel,
                             std::int64_t layers) {
            core::HeterogeneousStage stage;
            stage.accelerator = accel;
            stage.efficiency = hw::MicrobatchEfficiency(0.8, 8.0);
            stage.numLayers = layers;
            return stage;
        };

        // Naive even split.
        std::vector<core::HeterogeneousStage> stages;
        const std::int64_t per_stage =
            model_cfg.numLayers / (fast + slow);
        std::int64_t assigned = 0;
        for (std::int64_t i = 0; i < fast + slow; ++i) {
            const std::int64_t layers =
                (i + 1 == fast + slow)
                    ? model_cfg.numLayers - assigned
                    : per_stage;
            stages.push_back(make_stage(
                i < fast ? hw::presets::v100Sxm3()
                         : hw::presets::p100Pcie(),
                layers));
            assigned += layers;
        }

        core::TrainingJob job;
        job.batchSize = 64.0;
        job.numBatchesOverride = 1000.0;

        const net::LinkConfig hop{"hop", Seconds{2e-6},
                                  BitsPerSecond{2.4e12}};
        core::HeterogeneousPipelineModel even_model(counter, stages,
                                                    hop);
        const auto even = even_model.evaluate(job);

        const auto balanced_stages =
            core::HeterogeneousPipelineModel::balanceLayers(
                counter, stages, 8.0);
        core::HeterogeneousPipelineModel balanced_model(
            counter, balanced_stages, hop);
        const auto balanced = balanced_model.evaluate(job);

        std::cout << "=== heterogeneous pipeline: " << fast
                  << " x V100 + " << slow << " x P100, "
                  << model_cfg.name << " ===\n\n";
        TextTable table({"stage", "device", "even layers",
                         "even f+b/ub", "balanced layers",
                         "balanced f+b/ub"});
        for (std::size_t s = 0; s < stages.size(); ++s) {
            table.addRow(
                {std::to_string(s), stages[s].accelerator.name,
                 std::to_string(stages[s].numLayers),
                 units::formatDuration(even.stageTimes[s]),
                 std::to_string(balanced_stages[s].numLayers),
                 units::formatDuration(balanced.stageTimes[s])});
        }
        table.print(std::cout);
        std::cout << "\neven split:     "
                  << units::formatDuration(even.timePerBatch)
                  << "/batch (bottleneck stage "
                  << even.bottleneckStage << ")\n"
                  << "balanced split: "
                  << units::formatDuration(balanced.timePerBatch)
                  << "/batch ("
                  << units::formatFixed(
                         (even.timePerBatch - balanced.timePerBatch) /
                             even.timePerBatch * 100.0,
                         1)
                  << " % faster)\n";
    } catch (const UserError &error) {
        std::cerr << "error: " << error.what() << '\n';
        return 1;
    }
    return 0;
}

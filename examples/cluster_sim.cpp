/**
 * @file
 * Cluster-simulator walkthrough: run the discrete-event simulator on
 * DP / GPipe / TP training steps of minGPT, compare each against the
 * analytical prediction, and render the device-utilization timeline
 * that corresponds to the paper's Fig. 1.
 *
 * Usage:
 *   cluster_sim [devices] [microbatch]
 *     devices: accelerators in the node (default 8)
 *     microbatch: per-device batch (default 16)
 */

#include <cstdlib>
#include <iostream>
#include <vector>

#include "common/parse_num.hpp"
#include "common/error.hpp"
#include "common/units.hpp"
#include "core/amped_model.hpp"
#include "hw/presets.hpp"
#include "model/presets.hpp"
#include "net/system_config.hpp"
#include "sim/trace.hpp"
#include "sim/training_sim.hpp"
#include "validate/calibrations.hpp"

int
main(int argc, char **argv)
{
    using namespace amped;

    const std::int64_t devices = argc > 1 ? std::atoll(argv[1]) : 8;
    const double microbatch = argc > 2 ? amped::parseDouble(argv[2]) : 16.0;

    const auto model_cfg = model::presets::minGptPipeline();
    const auto accel = hw::presets::v100Sxm3();
    const auto eff = validate::calibrations::minGptHgx2();

    try {
        sim::TrainingSimulator simulator(model_cfg, accel, eff,
                                         net::presets::nvlinkV100());
        simulator.setBackwardMultiplier(3.0);

        core::AmpedModel analytic(
            model_cfg, accel, eff, net::presets::hgx2(devices),
            validate::calibrations::nvswitchOptions(devices));

        auto report = [](const char *name, double sim_time,
                         double analytic_time) {
            std::cout << name << ": simulated "
                      << units::formatDuration(sim_time)
                      << ", analytical "
                      << units::formatDuration(analytic_time) << " ("
                      << units::formatFixed(
                             (analytic_time - sim_time) / sim_time *
                                 100.0,
                             2)
                      << " % apart)\n";
        };

        // Data parallelism.
        {
            const auto outcome = simulator.simulateDataParallelStep(
                devices, microbatch);
            core::TrainingJob job;
            job.batchSize = microbatch * static_cast<double>(devices);
            job.numBatchesOverride = 1.0;
            const auto result = analytic.evaluate(
                mapping::makeMapping(1, 1, devices, 1, 1, 1), job);
            report("DP   ", outcome.stepTime, result.timePerBatch);
        }

        // GPipe pipeline parallelism (N_ub = devices).
        {
            const auto outcome = simulator.simulateGPipeStep(
                devices, microbatch, devices);
            core::TrainingJob job;
            job.batchSize = microbatch * static_cast<double>(devices);
            job.numBatchesOverride = 1.0;
            const auto result = analytic.evaluate(
                mapping::makeMapping(1, devices, 1, 1, 1, 1), job);
            report("GPipe", outcome.stepTime, result.timePerBatch);

            std::cout << "\nGPipe utilization timeline (the Fig. 1 "
                         "view):\n";
            std::vector<std::string> names;
            for (std::int64_t d = 0; d < devices; ++d)
                names.push_back("stage" + std::to_string(d));
            std::cout << sim::renderUtilizationTimeline(
                outcome.raw, outcome.deviceIds, names, 64);
        }

        // Tensor parallelism.
        {
            const auto outcome = simulator.simulateTensorParallelStep(
                devices, microbatch * static_cast<double>(devices));
            core::TrainingJob job;
            job.batchSize = microbatch * static_cast<double>(devices);
            job.numBatchesOverride = 1.0;
            core::ModelOptions tp_options =
                validate::calibrations::nvswitchOptions(devices);
            // The simulator's TP step has no weight update and the
            // same ring factor as its explicit transfer chain.
            tp_options.intraTopologyFactorOverride = -1.0;
            core::AmpedModel tp_analytic(model_cfg, accel, eff,
                                         net::presets::hgx2(devices),
                                         tp_options);
            const auto result = tp_analytic.evaluate(
                mapping::makeMapping(devices, 1, 1, 1, 1, 1), job);
            report("\nTP   ", outcome.stepTime,
                   result.timePerBatch - result.perBatch.weightUpdate);
        }
    } catch (const UserError &error) {
        std::cerr << "error: " << error.what() << '\n';
        return 1;
    }
    return 0;
}

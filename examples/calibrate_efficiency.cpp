/**
 * @file
 * Calibration workflow: reproduce how AMPeD obtains its eff(ub)
 * curve from measured runs (paper Sec. IV-A / V-A: "we use the
 * average microbatch efficiency as obtained during the runtime of
 * the experiment").
 *
 * With no hardware at hand, the "measurements" come from the
 * discrete-event simulator running DP steps of minGPT at several
 * microbatch sizes under a synthetic ground-truth efficiency curve;
 * the observed efficiencies are fitted with EfficiencyFitter and the
 * recovered (a, b) are compared against the ground truth, then fed
 * into the analytical model.
 *
 * Usage:
 *   calibrate_efficiency [a] [b]
 *     ground-truth curve parameters (defaults 0.8, 8).
 */

#include <cstdlib>
#include <iostream>

#include "common/parse_num.hpp"
#include "common/error.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/amped_model.hpp"
#include "core/compute_cost.hpp"
#include "hw/presets.hpp"
#include "model/presets.hpp"
#include "net/system_config.hpp"
#include "sim/training_sim.hpp"

int
main(int argc, char **argv)
{
    using namespace amped;

    const double true_a = argc > 1 ? amped::parseDouble(argv[1]) : 0.8;
    const double true_b = argc > 2 ? amped::parseDouble(argv[2]) : 8.0;

    try {
        const auto model_cfg = model::presets::minGpt85M();
        const auto accel = hw::presets::v100Sxm3();
        const hw::MicrobatchEfficiency truth(true_a, true_b);

        std::cout << "=== eff(ub) calibration workflow ===\n\n"
                  << "ground truth: a = " << true_a
                  << ", b = " << true_b << "\n\n";

        // 1. "Measure": simulate one-device steps at several
        //    microbatch sizes and back out the observed efficiency
        //    from the achieved vs peak FLOP rate.
        model::OpCounter counter(model_cfg);
        double fwd_flops = 0.0;
        for (std::int64_t l = 0; l < model_cfg.numLayers; ++l)
            fwd_flops += 2.0 * counter.layerMacsForward(l, 1.0);

        hw::EfficiencyFitter fitter;
        TextTable samples({"microbatch", "step time", "observed eff"});
        for (double ub : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0}) {
            sim::TrainingSimulator simulator(
                model_cfg, accel, truth, net::presets::nvlinkV100());
            const double step =
                simulator.simulateDataParallelStep(1, ub).stepTime;
            // Invert the compute model: 4 passes (fwd + bwd@3x) of
            // matmul FLOPs plus nonlinear work; compare against an
            // eff = 1 run to isolate the efficiency factor.
            const double ideal = [&] {
                const hw::MicrobatchEfficiency unity(1.0, 1e-9);
                sim::TrainingSimulator ideal_sim(
                    model_cfg, accel, unity,
                    net::presets::nvlinkV100());
                return ideal_sim.simulateDataParallelStep(1, ub)
                    .stepTime;
            }();
            // step ~ compute/eff + fixed, ideal ~ compute + fixed:
            // with negligible fixed cost, eff ~ ideal/step.
            const double observed = ideal / step;
            fitter.addSample(ub, observed);
            samples.addRow({units::formatFixed(ub, 0),
                            units::formatDuration(step),
                            units::formatFixed(observed, 4)});
        }
        samples.print(std::cout);

        // 2. Fit.
        const auto fitted = fitter.fit();
        std::cout << "\nfitted: a = "
                  << units::formatFixed(fitted.a(), 4)
                  << " (truth " << true_a << "), b = "
                  << units::formatFixed(fitted.b(), 3) << " (truth "
                  << true_b << "), residual "
                  << fitter.lastResidual()
                  << "\n(the systematic offset is real: observed "
                     "efficiency folds in the nonlinear-unit time,\n"
                     "which eff(ub) does not scale — exactly why the "
                     "paper fits eff per application+system)\n\n";

        // 3. Use the fitted curve in the analytical model.
        core::AmpedModel amped(model_cfg, accel, fitted,
                               net::presets::hgx2(8));
        core::TrainingJob job;
        job.batchSize = 8.0 * 16.0;
        job.numBatchesOverride = 1000.0;
        const auto result = amped.evaluate(
            mapping::makeMapping(1, 1, 8, 1, 1, 1), job);
        std::cout << "prediction with the fitted curve: 1000 DP-8 "
                     "batches in "
                  << units::formatDuration(result.totalTime)
                  << " (eff(16) = "
                  << units::formatFixed(fitted(16.0), 3) << ")\n";
    } catch (const UserError &error) {
        std::cerr << "error: " << error.what() << '\n';
        return 1;
    }
    return 0;
}

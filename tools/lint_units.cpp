/**
 * @file
 * Project lint: no raw `double` with a dimension-implying name in
 * public headers.
 *
 * The quantity layer (src/common/quantity.hpp) makes units part of
 * the type system; a declaration like `double linkBandwidthBitsPerSec`
 * defeats it silently.  This checker walks header files and flags any
 * `double` declaration -- parameter, field, or function return --
 * whose identifier ends in a dimension suffix (Seconds, Bits,
 * PerSecond/PerSec, Hz/Hertz, Flops, Joules, Watts, in CamelCase or
 * snake_case), unless the file:identifier pair appears in the
 * allowlist.  `std::vector<double>` declarations are held to the
 * same rule: raw-double *columns* with a dimension-implying name
 * are how the SoA batch kernels would leak into public headers
 * (DESIGN.md "Quantity boundary rule") -- columns stay internal to
 * .cpp files, and anything public is typed or dimensionless.  The allowlist is for genuine I/O boundaries (string
 * formatters, CLI parsing) and quantities outside the modeled
 * dimension set (tokens/s); each entry should say why.
 *
 * Usage:
 *   lint_units --root DIR [--root DIR]... [--allowlist FILE] [FILE...]
 *
 * Exits 0 when no violations were found, 1 otherwise, 2 on usage or
 * I/O errors.  Violations print as `file:line: ...`, one per line.
 */

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <regex>
#include <string>
#include <utility>
#include <vector>

namespace fs = std::filesystem;

namespace {

/** file-path suffix -> identifier pairs that are deliberately raw. */
struct Allowlist
{
    std::vector<std::pair<std::string, std::string>> entries;

    bool allows(const std::string &path, const std::string &name) const
    {
        for (const auto &[suffix, ident] : entries) {
            if (ident != name)
                continue;
            if (path.size() >= suffix.size() &&
                path.compare(path.size() - suffix.size(),
                             suffix.size(), suffix) == 0)
                return true;
        }
        return false;
    }
};

bool
loadAllowlist(const fs::path &file, Allowlist &out)
{
    std::ifstream in(file);
    if (!in) {
        std::cerr << "lint_units: cannot read allowlist " << file
                  << "\n";
        return false;
    }
    std::string line;
    while (std::getline(in, line)) {
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        // Trim.
        const auto b = line.find_first_not_of(" \t\r");
        if (b == std::string::npos)
            continue;
        const auto e = line.find_last_not_of(" \t\r");
        line = line.substr(b, e - b + 1);
        const auto colon = line.rfind(':');
        if (colon == std::string::npos) {
            std::cerr << "lint_units: malformed allowlist entry '"
                      << line << "' (want path-suffix:identifier)\n";
            return false;
        }
        out.entries.emplace_back(line.substr(0, colon),
                                 line.substr(colon + 1));
    }
    return true;
}

/** Lowercases and strips underscores: BitsPerSec -> bitspersec. */
std::string
normalized(const std::string &ident)
{
    std::string out;
    out.reserve(ident.size());
    for (char c : ident) {
        if (c == '_')
            continue;
        out.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(c))));
    }
    return out;
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
}

/** True when the identifier names a dimension the type system owns. */
bool
hasDimensionSuffix(const std::string &ident)
{
    static const char *const kSuffixes[] = {
        "seconds", "persecond", "persec", "bits",  "hz",
        "hertz",   "flops",     "joules", "watts",
    };
    const std::string norm = normalized(ident);
    for (const char *suffix : kSuffixes) {
        if (endsWith(norm, suffix))
            return true;
    }
    return false;
}

/**
 * Strips line and block comments and string/char literals so the
 * declaration regex never matches prose.  @p in_block carries the
 * block-comment state across lines.
 */
std::string
stripCommentsAndStrings(const std::string &line, bool &in_block)
{
    std::string out;
    out.reserve(line.size());
    for (std::size_t i = 0; i < line.size(); ++i) {
        if (in_block) {
            if (line[i] == '*' && i + 1 < line.size() &&
                line[i + 1] == '/') {
                in_block = false;
                ++i;
            }
            continue;
        }
        const char c = line[i];
        if (c == '/' && i + 1 < line.size()) {
            if (line[i + 1] == '/')
                break; // rest of line is a comment
            if (line[i + 1] == '*') {
                in_block = true;
                ++i;
                continue;
            }
        }
        if (c == '"' || c == '\'') {
            const char quote = c;
            ++i;
            while (i < line.size()) {
                if (line[i] == '\\')
                    ++i;
                else if (line[i] == quote)
                    break;
                ++i;
            }
            continue;
        }
        out.push_back(c);
    }
    return out;
}

struct Violation
{
    std::string file;
    std::size_t line = 0;
    std::string ident;
    bool column = false; ///< std::vector<double> rather than double.
};

void
scanFile(const fs::path &path, const Allowlist &allow,
         std::vector<Violation> &out)
{
    std::ifstream in(path);
    if (!in) {
        std::cerr << "lint_units: cannot read " << path << "\n";
        return;
    }
    // `double` immediately followed by an identifier: catches
    // parameters, struct fields, and return types of declarations.
    static const std::regex decl(R"(\bdouble\s+(\w+))");
    // A raw-double column (value, reference or pointer form):
    // `std::vector<double> stageSeconds`, `vector<double> &xSecs`.
    static const std::regex col_decl(
        R"(\bvector\s*<\s*double\s*>\s*[&*]?\s*(\w+))");
    std::string line;
    std::size_t lineno = 0;
    bool in_block = false;
    while (std::getline(in, line)) {
        ++lineno;
        const std::string code = stripCommentsAndStrings(line, in_block);
        for (auto it = std::sregex_iterator(code.begin(), code.end(),
                                            decl);
             it != std::sregex_iterator(); ++it) {
            const std::string ident = (*it)[1].str();
            if (!hasDimensionSuffix(ident))
                continue;
            if (allow.allows(path.generic_string(), ident))
                continue;
            out.push_back({path.generic_string(), lineno, ident});
        }
        for (auto it = std::sregex_iterator(code.begin(), code.end(),
                                            col_decl);
             it != std::sregex_iterator(); ++it) {
            const std::string ident = (*it)[1].str();
            if (!hasDimensionSuffix(ident))
                continue;
            if (allow.allows(path.generic_string(), ident))
                continue;
            out.push_back(
                {path.generic_string(), lineno, ident, true});
        }
    }
}

bool
isHeader(const fs::path &p)
{
    const auto ext = p.extension().string();
    return ext == ".hpp" || ext == ".h";
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<fs::path> roots;
    std::vector<fs::path> files;
    Allowlist allow;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--root" || arg == "--allowlist") {
            if (i + 1 >= argc) {
                std::cerr << "lint_units: " << arg
                          << " needs a value\n";
                return 2;
            }
            const std::string value = argv[++i];
            if (arg == "--root")
                roots.emplace_back(value);
            else if (!loadAllowlist(value, allow))
                return 2;
        } else if (arg == "--help" || arg == "-h") {
            std::cout << "usage: lint_units --root DIR [--root DIR]..."
                         " [--allowlist FILE] [FILE...]\n";
            return 0;
        } else {
            files.emplace_back(arg);
        }
    }
    if (roots.empty() && files.empty()) {
        std::cerr << "lint_units: nothing to scan (pass --root or "
                     "files)\n";
        return 2;
    }

    for (const auto &root : roots) {
        std::error_code ec;
        auto iter = fs::recursive_directory_iterator(root, ec);
        if (ec) {
            std::cerr << "lint_units: cannot open root " << root
                      << ": " << ec.message() << "\n";
            return 2;
        }
        for (const auto &entry : iter) {
            if (entry.is_regular_file() && isHeader(entry.path()))
                files.push_back(entry.path());
        }
    }
    std::sort(files.begin(), files.end());

    std::vector<Violation> violations;
    for (const auto &file : files)
        scanFile(file, allow, violations);

    for (const auto &v : violations) {
        std::cerr << v.file << ":" << v.line << ": raw "
                  << (v.column ? "double column (std::vector"
                                 "<double>) '"
                               : "double '")
                  << v.ident
                  << "' has a dimension-implying name; use a typed "
                     "quantity from common/quantity.hpp"
                  << (v.column ? " per element, keep the column "
                                 "internal to a .cpp file,"
                               : "")
                  << " or add a justified allowlist entry\n";
    }
    std::cerr << "lint_units: scanned " << files.size()
              << " header(s), " << violations.size()
              << " violation(s)\n";
    return violations.empty() ? 0 : 1;
}

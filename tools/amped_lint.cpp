/**
 * @file
 * amped_lint: the project's multi-rule static-analysis driver.
 *
 * Grown from the single-purpose lint_units checker (PR 5), this tool
 * runs a set of line-based rules over the tree and reports every
 * violation as `file:line: [rule] ...` plus, optionally, a
 * machine-readable JSON findings file.  All rules share the same
 * scanning substrate: comments and string/char literals are stripped
 * (with block-comment state carried across lines) before any regex
 * runs, so prose and format strings never trip a rule.
 *
 * Rules (each with its own allowlist namespace and fixture under
 * tests/lint_fixtures/):
 *
 *  - units-in-headers: no raw `double` (or `std::vector<double>`
 *    column) with a dimension-implying name in public headers — the
 *    quantity layer (src/common/quantity.hpp) owns those dimensions.
 *    Absorbed unchanged from lint_units.
 *
 *  - no-locale-parse: no `strtod` / `strtof` / `strtold` / `atof` /
 *    `sscanf`-family calls anywhere.  They read the process locale's
 *    radix character, so LC_ALL=de_DE.UTF-8 silently corrupts every
 *    parsed double; the one canonical parser is
 *    common/parse_num.hpp's parseDouble (std::from_chars), and its
 *    own guarded fallback is the single allowlisted use.
 *
 *  - no-nondeterminism: no `std::rand` / `srand` / `time(` /
 *    `std::random_device` / `std::getenv` outside the two documented
 *    environment seams (AMPED_THREADS in common/thread_pool.cpp,
 *    AMPED_SWEEP_ENGINE in explore/explorer.cpp).  Seeded Rng
 *    streams and the Clock abstraction are the sanctioned sources of
 *    randomness and time; ambient process state is how "byte-
 *    identical at any thread count" quietly stops being true.
 *
 *  - no-unordered-iteration-in-output: no range-for over an
 *    `unordered_map` / `unordered_set` in serialization, golden,
 *    report, trace, or protocol translation units.  Hash iteration
 *    order is implementation-defined, so anything it feeds into an
 *    output byte stream breaks the golden contract; iterate a sorted
 *    view (or use std::map) instead.  Heuristic by design: the rule
 *    tracks identifiers declared as unordered containers within the
 *    file and flags range-fors whose range expression names one.
 *
 * Allowlist entries are `rule:path-suffix:identifier`, one per line,
 * `#` comments; every entry should say why it is justified.
 *
 * Usage:
 *   amped_lint [--rule NAME]... --root DIR [--root DIR]...
 *              [--allowlist FILE] [--findings-out FILE] [FILE...]
 *
 * `--rule` selects a subset (default: all rules).  Exits 0 when no
 * violations were found, 1 otherwise, 2 on usage or I/O errors.
 */

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <regex>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace fs = std::filesystem;

namespace {

// ---------------------------------------------------------------------
// Shared substrate: allowlist, comment stripping, findings.
// ---------------------------------------------------------------------

/** rule -> file-path suffix -> identifier triples that are
 *  deliberately exempt. */
struct Allowlist
{
    struct Entry
    {
        std::string rule;
        std::string pathSuffix;
        std::string ident;
    };
    std::vector<Entry> entries;

    bool
    allows(const std::string &rule, const std::string &path,
           const std::string &name) const
    {
        for (const auto &entry : entries) {
            if (entry.rule != rule || entry.ident != name)
                continue;
            if (path.size() >= entry.pathSuffix.size() &&
                path.compare(path.size() - entry.pathSuffix.size(),
                             entry.pathSuffix.size(),
                             entry.pathSuffix) == 0)
                return true;
        }
        return false;
    }
};

bool
loadAllowlist(const fs::path &file, Allowlist &out)
{
    std::ifstream in(file);
    if (!in) {
        std::cerr << "amped_lint: cannot read allowlist " << file
                  << "\n";
        return false;
    }
    std::string line;
    while (std::getline(in, line)) {
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        const auto b = line.find_first_not_of(" \t\r");
        if (b == std::string::npos)
            continue;
        const auto e = line.find_last_not_of(" \t\r");
        line = line.substr(b, e - b + 1);
        const auto first = line.find(':');
        const auto last = line.rfind(':');
        if (first == std::string::npos || first == last) {
            std::cerr << "amped_lint: malformed allowlist entry '"
                      << line
                      << "' (want rule:path-suffix:identifier)\n";
            return false;
        }
        out.entries.push_back(
            {line.substr(0, first),
             line.substr(first + 1, last - first - 1),
             line.substr(last + 1)});
    }
    return true;
}

/**
 * Strips line and block comments and string/char literals so rule
 * regexes never match prose or format strings.  @p in_block carries
 * the block-comment state across lines.
 */
std::string
stripCommentsAndStrings(const std::string &line, bool &in_block)
{
    std::string out;
    out.reserve(line.size());
    for (std::size_t i = 0; i < line.size(); ++i) {
        if (in_block) {
            if (line[i] == '*' && i + 1 < line.size() &&
                line[i + 1] == '/') {
                in_block = false;
                ++i;
            }
            continue;
        }
        const char c = line[i];
        if (c == '/' && i + 1 < line.size()) {
            if (line[i + 1] == '/')
                break; // rest of line is a comment
            if (line[i + 1] == '*') {
                in_block = true;
                ++i;
                continue;
            }
        }
        if (c == '"' || c == '\'') {
            const char quote = c;
            ++i;
            while (i < line.size()) {
                if (line[i] == '\\')
                    ++i;
                else if (line[i] == quote)
                    break;
                ++i;
            }
            continue;
        }
        out.push_back(c);
    }
    return out;
}

struct Finding
{
    std::string rule;
    std::string file;
    std::size_t line = 0;
    std::string ident;
    std::string message;
};

/** One scanned file: path + comment/string-stripped code lines. */
struct SourceFile
{
    std::string path;
    std::vector<std::string> code; ///< 0-based; line N is code[N-1].
};

// ---------------------------------------------------------------------
// Rule: units-in-headers (absorbed from lint_units, PR 5).
// ---------------------------------------------------------------------

/** Lowercases and strips underscores: BitsPerSec -> bitspersec. */
std::string
normalized(const std::string &ident)
{
    std::string out;
    out.reserve(ident.size());
    for (char c : ident) {
        if (c == '_')
            continue;
        out.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(c))));
    }
    return out;
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
}

/** True when the identifier names a dimension the type system owns. */
bool
hasDimensionSuffix(const std::string &ident)
{
    static const char *const kSuffixes[] = {
        "seconds", "persecond", "persec", "bits",  "hz",
        "hertz",   "flops",     "joules", "watts",
    };
    const std::string norm = normalized(ident);
    for (const char *suffix : kSuffixes) {
        if (endsWith(norm, suffix))
            return true;
    }
    return false;
}

bool
isHeader(const std::string &path)
{
    return endsWith(path, ".hpp") || endsWith(path, ".h");
}

void
scanUnitsInHeaders(const SourceFile &file, const Allowlist &allow,
                   std::vector<Finding> &out)
{
    static const std::string kRule = "units-in-headers";
    if (!isHeader(file.path))
        return;
    // `double` immediately followed by an identifier: catches
    // parameters, struct fields, and return types of declarations.
    static const std::regex decl(R"(\bdouble\s+(\w+))");
    // A raw-double column (value, reference or pointer form):
    // `std::vector<double> stageSeconds`, `vector<double> &xSecs`.
    static const std::regex col_decl(
        R"(\bvector\s*<\s*double\s*>\s*[&*]?\s*(\w+))");
    for (std::size_t n = 0; n < file.code.size(); ++n) {
        const std::string &code = file.code[n];
        for (auto it = std::sregex_iterator(code.begin(), code.end(),
                                            decl);
             it != std::sregex_iterator(); ++it) {
            const std::string ident = (*it)[1].str();
            if (!hasDimensionSuffix(ident))
                continue;
            if (allow.allows(kRule, file.path, ident))
                continue;
            out.push_back(
                {kRule, file.path, n + 1, ident,
                 "raw double '" + ident +
                     "' has a dimension-implying name; use a typed "
                     "quantity from common/quantity.hpp or add a "
                     "justified allowlist entry"});
        }
        for (auto it = std::sregex_iterator(code.begin(), code.end(),
                                            col_decl);
             it != std::sregex_iterator(); ++it) {
            const std::string ident = (*it)[1].str();
            if (!hasDimensionSuffix(ident))
                continue;
            if (allow.allows(kRule, file.path, ident))
                continue;
            out.push_back(
                {kRule, file.path, n + 1, ident,
                 "raw double column (std::vector<double>) '" +
                     ident +
                     "' has a dimension-implying name; use a typed "
                     "quantity per element, keep the column internal "
                     "to a .cpp file, or add a justified allowlist "
                     "entry"});
        }
    }
}

// ---------------------------------------------------------------------
// Rule: no-locale-parse.
// ---------------------------------------------------------------------

void
scanNoLocaleParse(const SourceFile &file, const Allowlist &allow,
                  std::vector<Finding> &out)
{
    static const std::string kRule = "no-locale-parse";
    static const std::regex call(
        R"(\b(?:std\s*::\s*)?(strtod|strtof|strtold|atof|sscanf|fscanf|vsscanf|vfscanf|scanf)\s*\()");
    for (std::size_t n = 0; n < file.code.size(); ++n) {
        const std::string &code = file.code[n];
        for (auto it = std::sregex_iterator(code.begin(), code.end(),
                                            call);
             it != std::sregex_iterator(); ++it) {
            const std::string ident = (*it)[1].str();
            if (allow.allows(kRule, file.path, ident))
                continue;
            out.push_back(
                {kRule, file.path, n + 1, ident,
                 "'" + ident +
                     "' parses with the process locale's radix "
                     "character (LC_ALL=de_DE.UTF-8 corrupts it); "
                     "use common/parse_num.hpp parseDouble"});
        }
    }
}

// ---------------------------------------------------------------------
// Rule: no-nondeterminism.
// ---------------------------------------------------------------------

void
scanNoNondeterminism(const SourceFile &file, const Allowlist &allow,
                     std::vector<Finding> &out)
{
    static const std::string kRule = "no-nondeterminism";
    static const std::regex call(
        R"(\b(?:std\s*::\s*)?(rand|srand|time|getenv)\s*\()");
    static const std::regex device(
        R"(\b(?:std\s*::\s*)?(random_device)\b)");
    const auto flag = [&](const std::string &ident, std::size_t n) {
        if (allow.allows(kRule, file.path, ident))
            return;
        out.push_back(
            {kRule, file.path, n + 1, ident,
             "'" + ident +
                 "' injects ambient process state; use a seeded "
                 "common/rng.hpp stream or the Clock abstraction "
                 "(env reads live only behind the two documented "
                 "seams — see the allowlist)"});
    };
    for (std::size_t n = 0; n < file.code.size(); ++n) {
        const std::string &code = file.code[n];
        for (auto it = std::sregex_iterator(code.begin(), code.end(),
                                            call);
             it != std::sregex_iterator(); ++it)
            flag((*it)[1].str(), n);
        for (auto it = std::sregex_iterator(code.begin(), code.end(),
                                            device);
             it != std::sregex_iterator(); ++it)
            flag((*it)[1].str(), n);
    }
}

// ---------------------------------------------------------------------
// Rule: no-unordered-iteration-in-output.
// ---------------------------------------------------------------------

/** True for translation units that build output byte streams. */
bool
isOutputUnit(const std::string &path)
{
    const std::string name =
        normalized(fs::path(path).filename().string());
    static const char *const kMarkers[] = {
        "json", "golden", "report", "trace", "protocol", "export",
        "serial",
    };
    for (const char *marker : kMarkers) {
        if (name.find(marker) != std::string::npos)
            return true;
    }
    return false;
}

void
scanNoUnorderedIterationInOutput(const SourceFile &file,
                                 const Allowlist &allow,
                                 std::vector<Finding> &out)
{
    static const std::string kRule =
        "no-unordered-iteration-in-output";
    if (!isOutputUnit(file.path))
        return;
    // Pass 1: identifiers declared with an unordered container type
    // (greedy `.*>` rides over nested template arguments; the name
    // may be on the same line or implied later — both fixtures and
    // real declarations put it on the declaration line).
    static const std::regex decl(
        R"(\bunordered_(?:map|set)\s*<.*>\s*[&*]?\s*(\w+))");
    std::set<std::string> containers;
    for (const std::string &code : file.code) {
        for (auto it = std::sregex_iterator(code.begin(), code.end(),
                                            decl);
             it != std::sregex_iterator(); ++it)
            containers.insert((*it)[1].str());
    }
    // Pass 2: range-fors whose range expression names an unordered
    // container (declared above or spelled inline).
    static const std::regex range_for(
        R"(\bfor\s*\([^;()]*:\s*([^)]+)\))");
    static const std::regex word(R"(\w+)");
    for (std::size_t n = 0; n < file.code.size(); ++n) {
        const std::string &code = file.code[n];
        for (auto it = std::sregex_iterator(code.begin(), code.end(),
                                            range_for);
             it != std::sregex_iterator(); ++it) {
            const std::string range = (*it)[1].str();
            std::string hit;
            if (range.find("unordered_map") != std::string::npos ||
                range.find("unordered_set") != std::string::npos) {
                hit = "unordered container";
            } else {
                for (auto wit = std::sregex_iterator(
                         range.begin(), range.end(), word);
                     wit != std::sregex_iterator(); ++wit) {
                    if (containers.count(wit->str()) != 0) {
                        hit = wit->str();
                        break;
                    }
                }
            }
            if (hit.empty())
                continue;
            if (allow.allows(kRule, file.path, hit))
                continue;
            out.push_back(
                {kRule, file.path, n + 1, hit,
                 "range-for over unordered container '" + hit +
                     "' in an output translation unit: hash "
                     "iteration order is implementation-defined and "
                     "breaks byte-identical output; iterate a "
                     "sorted view (or use std::map)"});
        }
    }
}

// ---------------------------------------------------------------------
// Driver.
// ---------------------------------------------------------------------

using ScanFn = void (*)(const SourceFile &, const Allowlist &,
                        std::vector<Finding> &);

struct Rule
{
    const char *name;
    ScanFn scan;
};

const Rule kRules[] = {
    {"units-in-headers", scanUnitsInHeaders},
    {"no-locale-parse", scanNoLocaleParse},
    {"no-nondeterminism", scanNoNondeterminism},
    {"no-unordered-iteration-in-output",
     scanNoUnorderedIterationInOutput},
};

bool
isSource(const fs::path &p)
{
    const auto ext = p.extension().string();
    return ext == ".hpp" || ext == ".h" || ext == ".cpp";
}

bool
readSource(const fs::path &path, SourceFile &out)
{
    std::ifstream in(path);
    if (!in) {
        std::cerr << "amped_lint: cannot read " << path << "\n";
        return false;
    }
    out.path = path.generic_string();
    out.code.clear();
    std::string line;
    bool in_block = false;
    while (std::getline(in, line))
        out.code.push_back(stripCommentsAndStrings(line, in_block));
    return true;
}

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default: out.push_back(c);
        }
    }
    return out;
}

bool
writeFindings(const fs::path &path,
              const std::vector<Finding> &findings)
{
    std::ofstream out(path);
    if (!out) {
        std::cerr << "amped_lint: cannot write findings to " << path
                  << "\n";
        return false;
    }
    out << "[\n";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const Finding &f = findings[i];
        out << "  {\"rule\": \"" << jsonEscape(f.rule)
            << "\", \"file\": \"" << jsonEscape(f.file)
            << "\", \"line\": " << f.line << ", \"ident\": \""
            << jsonEscape(f.ident) << "\", \"message\": \""
            << jsonEscape(f.message) << "\"}"
            << (i + 1 < findings.size() ? "," : "") << "\n";
    }
    out << "]\n";
    return out.good();
}

void
usage(std::ostream &os)
{
    os << "usage: amped_lint [--rule NAME]... --root DIR "
          "[--root DIR]... [--allowlist FILE] "
          "[--findings-out FILE] [FILE...]\n"
          "rules:";
    for (const Rule &rule : kRules)
        os << " " << rule.name;
    os << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<fs::path> roots;
    std::vector<fs::path> files;
    std::vector<std::string> selected;
    fs::path findings_out;
    Allowlist allow;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--root" || arg == "--allowlist" ||
            arg == "--rule" || arg == "--findings-out") {
            if (i + 1 >= argc) {
                std::cerr << "amped_lint: " << arg
                          << " needs a value\n";
                return 2;
            }
            const std::string value = argv[++i];
            if (arg == "--root") {
                roots.emplace_back(value);
            } else if (arg == "--rule") {
                const bool known = std::any_of(
                    std::begin(kRules), std::end(kRules),
                    [&value](const Rule &r) {
                        return value == r.name;
                    });
                if (!known) {
                    std::cerr << "amped_lint: unknown rule '"
                              << value << "'\n";
                    usage(std::cerr);
                    return 2;
                }
                selected.push_back(value);
            } else if (arg == "--findings-out") {
                findings_out = value;
            } else if (!loadAllowlist(value, allow)) {
                return 2;
            }
        } else if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        } else {
            files.emplace_back(arg);
        }
    }
    if (roots.empty() && files.empty()) {
        std::cerr
            << "amped_lint: nothing to scan (pass --root or files)\n";
        return 2;
    }

    for (const auto &root : roots) {
        std::error_code ec;
        auto iter = fs::recursive_directory_iterator(root, ec);
        if (ec) {
            std::cerr << "amped_lint: cannot open root " << root
                      << ": " << ec.message() << "\n";
            return 2;
        }
        for (const auto &entry : iter) {
            if (entry.is_regular_file() && isSource(entry.path()))
                files.push_back(entry.path());
        }
    }
    std::sort(files.begin(), files.end());

    std::vector<Finding> findings;
    std::size_t scanned = 0;
    for (const auto &path : files) {
        SourceFile file;
        if (!readSource(path, file))
            return 2;
        ++scanned;
        for (const Rule &rule : kRules) {
            if (!selected.empty() &&
                std::find(selected.begin(), selected.end(),
                          rule.name) == selected.end())
                continue;
            rule.scan(file, allow, findings);
        }
    }

    for (const Finding &f : findings)
        std::cerr << f.file << ":" << f.line << ": [" << f.rule
                  << "] " << f.message << "\n";
    if (!findings_out.empty() &&
        !writeFindings(findings_out, findings))
        return 2;
    std::cerr << "amped_lint: scanned " << scanned << " file(s), "
              << findings.size() << " finding(s)\n";
    return findings.empty() ? 0 : 1;
}

#!/bin/sh
# Smoke-tests cooperative cancellation of the CLI end to end, on a
# deliberately large optimize grid (~500k points, a second or two of
# wall clock):
#
#   sigint:   a SIGINT landing mid-search must exit 130 and still
#             flush a well-formed CSV of the deterministic
#             best-so-far prefix.
#   deadline: --deadline-ms 1 must stop the run, exit 124 (the
#             `timeout` convention), report the deadline on stderr,
#             and still flush well-formed CSV.
#   serve:    a SIGTERM landing while `amped serve --stdio` is mid-
#             request must exit 143 and still flush the in-flight
#             response as valid JSON with run_status "cancelled".
#
# Usage: smoke_cancel.sh <amped-binary> <work-dir> <sigint|deadline|serve>
set -u

AMPED=$1
WORK=$2
MODE=$3
mkdir -p "$WORK"

BATCHES=$(python3 -c "print(','.join(str(256 + 8 * i) for i in range(2000)))")

# One flat argument string (no embedded spaces), so the sigint branch
# can background the binary itself — signalling a wrapper subshell
# would leave the real process running.
GRID_ARGS="optimize --model 145b --accel a100 --nodes 64 \
--per-node 8 --batches $BATCHES --top 100000 --csv"

# The CSV must parse and be rectangular even when the run was cut
# short: a header row plus zero or more complete data rows.
check_csv() {
    python3 - "$WORK/out.csv" <<'EOF'
import csv
import sys

rows = list(csv.reader(open(sys.argv[1])))
assert rows, "cancelled run flushed no CSV at all"
width = len(rows[0])
assert width > 1, f"implausible CSV header: {rows[0]!r}"
for row in rows:
    assert len(row) == width, f"torn CSV row: {row!r}"
EOF
}

case "$MODE" in
sigint)
    # The signal must land while the search is in flight; on a fast
    # machine the first delay may lose the race, so shrink and retry.
    for delay in 0.3 0.15 0.05 0.02; do
        # shellcheck disable=SC2086 # deliberate word splitting
        "$AMPED" $GRID_ARGS >"$WORK/out.csv" 2>"$WORK/err.txt" &
        pid=$!
        sleep "$delay"
        kill -INT "$pid" 2>/dev/null
        wait "$pid"
        rc=$?
        if [ "$rc" -eq 130 ]; then
            check_csv || exit 1
            grep -q "stopped early (cancelled)" "$WORK/err.txt" || {
                echo "FAIL: no cancellation notice on stderr" >&2
                cat "$WORK/err.txt" >&2
                exit 1
            }
            echo "sigint smoke ok (signal after ${delay}s)"
            exit 0
        fi
        echo "delay ${delay}s: exit $rc (run finished first?); retrying" >&2
    done
    echo "FAIL: never interrupted the run mid-flight" >&2
    exit 1
    ;;
deadline)
    # shellcheck disable=SC2086 # deliberate word splitting
    "$AMPED" $GRID_ARGS --deadline-ms 1 \
        >"$WORK/out.csv" 2>"$WORK/err.txt"
    rc=$?
    if [ "$rc" -ne 124 ]; then
        echo "FAIL: expected exit 124 on deadline, got $rc" >&2
        cat "$WORK/err.txt" >&2
        exit 1
    fi
    grep -q "deadline-exceeded" "$WORK/err.txt" || {
        echo "FAIL: no deadline notice on stderr" >&2
        cat "$WORK/err.txt" >&2
        exit 1
    }
    check_csv || exit 1
    echo "deadline smoke ok"
    exit 0
    ;;
serve)
    # The same deliberately large grid, phrased as one serve request.
    REQUEST=$(python3 -c "
import json
batches = [256 + 8 * i for i in range(2000)]
print(json.dumps({'id': 1, 'method': 'optimize', 'params': {
    'model': '145b', 'nodes': 64, 'per-node': 8,
    'batches': batches, 'top': 100000}}))
")
    # The transcript must hold only well-formed JSON lines, and the
    # last one must be the in-flight request flushed as a partial
    # result.  Exit 3 = the run completed before the signal (retry).
    check_transcript() {
        python3 - "$WORK/out.jsonl" <<'EOF'
import json
import sys

lines = [l for l in open(sys.argv[1]) if l.strip()]
if not lines:
    sys.exit(3)  # signal landed before the request began
responses = [json.loads(l) for l in lines]
last = responses[-1]
assert last["status"] == "ok", f"unexpected status: {last!r}"
if last["run_status"] == "completed":
    sys.exit(3)  # signal landed after the request finished
assert last["run_status"] == "cancelled", f"unexpected: {last!r}"
EOF
    }
    # As above: the signal must land mid-request, so retry with
    # shrinking delays when the run wins the race.  $! names the last
    # pipeline component — the server binary itself, not the feeder
    # subshell (which dies on its own within 5s).
    for delay in 0.5 0.3 0.15 0.05; do
        { printf '%s\n' "$REQUEST"; sleep 5; } |
            "$AMPED" serve --stdio \
                >"$WORK/out.jsonl" 2>"$WORK/err.txt" &
        pid=$!
        sleep "$delay"
        kill -TERM "$pid" 2>/dev/null
        wait "$pid"
        rc=$?
        if [ "$rc" -ne 143 ]; then
            echo "delay ${delay}s: exit $rc (expected 143); retrying" >&2
            continue
        fi
        check_transcript
        check_rc=$?
        if [ "$check_rc" -eq 3 ]; then
            echo "delay ${delay}s: signal missed the request; retrying" >&2
            continue
        fi
        [ "$check_rc" -eq 0 ] || exit 1
        grep -q "serve stopped (cancelled)" "$WORK/err.txt" || {
            echo "FAIL: no cancellation notice on stderr" >&2
            cat "$WORK/err.txt" >&2
            exit 1
        }
        echo "serve smoke ok (SIGTERM after ${delay}s)"
        exit 0
    done
    echo "FAIL: never interrupted a serve request mid-flight" >&2
    exit 1
    ;;
*)
    echo "usage: smoke_cancel.sh <amped> <work-dir> <sigint|deadline|serve>" >&2
    exit 2
    ;;
esac

/**
 * @file
 * `golden_check` — golden-file regression driver for the bench
 * harnesses.
 *
 * Runs every figure/table bench with `--golden-out`, then diffs the
 * produced metric records against the checked-in goldens under
 * tests/golden/ with tolerance-aware numeric comparison
 * (testing/diff.hpp).  A human-readable mismatch report is written
 * to the work directory (and echoed) on failure.
 *
 * Modes:
 *   golden_check --bench-dir build/bench --golden-dir tests/golden
 *       check mode (default): non-zero exit on any mismatch
 *   golden_check ... --update-golden
 *       regenerate the goldens in place from the current build
 *
 * Options: --only <name> restricts to one bench; --abs-tol /
 * --rel-tol override the comparison thresholds; --report names the
 * mismatch-report file; --work-dir holds the intermediate outputs.
 */

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/arg_parser.hpp"
#include "common/error.hpp"
#include "testing/diff.hpp"
#include "testing/golden.hpp"

namespace {

using namespace amped;

/** Every bench harness that supports --golden-out. */
const std::vector<std::string> kBenches = {
    "table2_megatron_validation",
    "table3_gpipe_validation",
    "fig1_utilization",
    "fig2a_dp_validation",
    "fig2b_pp_validation",
    "fig2c_microbatch_sweep",
    "fig3_breakdown",
    "fig4_6_tp_intra_sweep",
    "fig7_9_dp_intra_sweep",
    "fig10_lowend_systems",
    "fig11_optical_substrate",
    "ablation_design_choices",
    "energy_case_study2",
    "baseline_comparison",
    "resilience_case_study",
    "perf_microbench",
    "obs_run_report",
    "optimizer_case_study",
    "serve_loadgen",
};

/**
 * Runs one bench in golden mode, discarding its table output.
 * @throws UserError when the binary is missing or exits non-zero.
 */
void
runBench(const std::filesystem::path &bench_dir,
         const std::string &name, const std::filesystem::path &out)
{
    const auto binary = bench_dir / name;
    require(std::filesystem::exists(binary), "golden_check: bench "
            "binary '", binary.string(), "' not found; build the "
            "bench targets first");
    const std::string command = "\"" + binary.string() +
                                "\" --golden-out \"" + out.string() +
                                "\" > /dev/null";
    const int status = std::system(command.c_str());
    require(status == 0, "golden_check: '", name,
            "' exited with status ", status);
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser parser;
    parser.addOption("bench-dir",
                     "directory holding the bench binaries", "bench");
    parser.addOption("golden-dir",
                     "directory holding the checked-in goldens",
                     "tests/golden");
    parser.addOption("work-dir",
                     "scratch directory for freshly produced records",
                     "golden_check_out");
    parser.addOption("report",
                     "mismatch-report file (relative to --work-dir "
                     "unless absolute)", "golden_check_report.txt");
    parser.addOption("only", "run a single bench by name", "");
    parser.addOption("abs-tol", "absolute tolerance", "1e-9");
    parser.addOption("rel-tol", "relative tolerance", "1e-6");
    parser.addFlag("update-golden",
                   "regenerate the goldens instead of checking");
    parser.addFlag("help", "show this help");

    try {
        parser.parse({argv + 1, argv + argc});
        if (parser.getFlag("help")) {
            std::cout << "usage: golden_check [options]\n"
                      << parser.helpText();
            return 0;
        }

        const std::filesystem::path bench_dir = parser.get("bench-dir");
        const std::filesystem::path golden_dir =
            parser.get("golden-dir");
        const std::filesystem::path work_dir = parser.get("work-dir");
        testing::DiffOptions tolerances;
        tolerances.absTol = parser.getDouble("abs-tol");
        tolerances.relTol = parser.getDouble("rel-tol");

        std::vector<std::string> benches;
        const std::string only = parser.get("only");
        if (only.empty()) {
            benches = kBenches;
        } else {
            require(std::find(kBenches.begin(), kBenches.end(),
                              only) != kBenches.end(),
                    "golden_check: unknown bench '", only, "'");
            benches = {only};
        }

        if (parser.getFlag("update-golden")) {
            std::filesystem::create_directories(golden_dir);
            for (const auto &name : benches) {
                const auto out = golden_dir / (name + ".golden");
                runBench(bench_dir, name, out);
                std::cout << "updated " << out.string() << '\n';
            }
            return 0;
        }

        std::filesystem::create_directories(work_dir);
        std::size_t failures = 0;
        std::string report;
        for (const auto &name : benches) {
            const auto expected_path =
                golden_dir / (name + ".golden");
            const auto actual_path = work_dir / (name + ".golden");
            runBench(bench_dir, name, actual_path);
            const auto expected =
                testing::GoldenRecord::fromFile(expected_path.string());
            const auto actual =
                testing::GoldenRecord::fromFile(actual_path.string());
            const auto diff =
                testing::diffRecords(expected, actual, tolerances);
            const auto rendered = diff.render(name, tolerances);
            if (diff.clean()) {
                std::cout << rendered;
            } else {
                ++failures;
                std::cout << rendered;
                report += rendered;
            }
        }

        if (failures > 0) {
            auto report_path = std::filesystem::path(
                parser.get("report"));
            if (report_path.is_relative())
                report_path = work_dir / report_path;
            std::ofstream out(report_path);
            require(out.good(), "golden_check: cannot write report '",
                    report_path.string(), "'");
            out << report;
            std::cout << "\ngolden_check: " << failures << " of "
                      << benches.size()
                      << " benches mismatched; report written to "
                      << report_path.string()
                      << "\n(regenerate intentionally changed "
                         "goldens with --update-golden)\n";
            return 1;
        }
        std::cout << "\ngolden_check: all " << benches.size()
                  << " benches match\n";
        return 0;
    } catch (const UserError &error) {
        std::cerr << "golden_check: error: " << error.what() << '\n';
        return 1;
    }
}

/**
 * @file
 * `amped` — the command-line front end to the model.
 *
 * Subcommands:
 *   evaluate   predict training time/throughput for one mapping
 *   explore    rank every valid mapping of a cluster
 *   breakdown  per-phase time split for one mapping (Fig. 3 view)
 *   memory     per-device memory footprint and ZeRO comparison
 *   scale      strong-scaling sweep: best mapping per node count
 *   resilience expected time-to-train under failures with
 *              checkpoint/restart (Daly-optimal interval by default)
 *   report     full markdown report (prediction+memory+energy)
 *   trace      simulate one training step from a key = value config
 *              file and export a Chrome-trace (chrome://tracing /
 *              Perfetto) JSON and/or a structured JSON run report
 *   serve      long-lived JSON evaluation service (stdio pipes or a
 *              loopback TCP socket; see serve/protocol.hpp)
 *   presets    list the built-in model/accelerator/interconnect names
 *
 * Custom hardware/models load from key = value files via
 * --model-file / --accel-file / --system-file (see
 * explore/config_io.hpp for the schemas).
 *
 * Examples:
 *   amped evaluate --model gpt3 --batch 1536 --nodes 128 \
 *       --per-node 8 --tp-intra 8 --pp-inter 16 --dp-inter 8
 *   amped explore --model 145b --batch 8192 --top 10 --memory-check
 *   amped memory --model 1t --batch 3072 --tp-intra 8 --pp-inter 64 \
 *       --dp-inter 6 --zero 2
 */

#include <atomic>
#include <cmath>
#include <csignal>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "common/arg_parser.hpp"
#include "common/cancel.hpp"
#include "common/error.hpp"
#include "common/keyval.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "common/thread_pool.hpp"
#include "core/amped_model.hpp"
#include "core/memory_model.hpp"
#include "core/resilience.hpp"
#include "explore/explorer.hpp"
#include "explore/optimizer.hpp"
#include "explore/report.hpp"
#include "explore/config_io.hpp"
#include "explore/registry.hpp"
#include "net/system_config.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/run_report.hpp"
#include "serve/server.hpp"
#include "sim/training_sim.hpp"
#include "validate/calibrations.hpp"

namespace {

using namespace amped;

// ---------------------------------------------------------------
// Cooperative shutdown: main() installs SIGINT/SIGTERM handlers
// that trip the process-wide root token.  Long-running subcommands
// derive a child token (optionally deadline-bounded via
// --deadline-ms), so Ctrl-C stops the sweep at the next block/wave
// checkpoint and the partial results already computed are still
// flushed as valid CSV / tables before exit.

std::atomic<int> g_stop_signal{0};

/** Root token tripped by the signal handlers; made in main(). */
CancelToken g_root_token;

extern "C" void
handleStopSignal(int signo)
{
    // Async-signal-safe: an atomic store plus CancelToken::cancel(),
    // which is documented to perform only lock-free atomic stores
    // and a monotonic clock read.
    g_stop_signal.store(signo, std::memory_order_relaxed);
    g_root_token.cancel();
}

void
installSignalHandlers()
{
    g_root_token = CancelToken::make();
    std::signal(SIGINT, handleStopSignal);
    std::signal(SIGTERM, handleStopSignal);
}

/** Adds the wall-clock budget option shared by long-running runs. */
void
addDeadlineOption(ArgParser &parser)
{
    parser.addOption("deadline-ms",
                     "wall-clock budget in milliseconds; the run "
                     "stops at the next checkpoint once it expires "
                     "(0 = no deadline)", "0");
}

/** Child of the root token carrying the --deadline-ms budget. */
CancelToken
tokenFrom(const ArgParser &parser)
{
    const double ms = parser.getDouble("deadline-ms");
    require(ms >= 0.0, "--deadline-ms must be >= 0, got ", ms);
    if (ms == 0.0)
        return g_root_token.child();
    return g_root_token.child(Deadline::after(ms / 1000.0));
}

/**
 * Exit code for a run that stopped early: 130/143 after a SIGINT/
 * SIGTERM (the shell convention 128 + signal), 124 when a deadline
 * expired (the `timeout` utility's convention).
 */
int
stopExitCode(RunStatus status)
{
    const int signo = g_stop_signal.load(std::memory_order_relaxed);
    if (signo == SIGINT)
        return 130;
    if (signo == SIGTERM)
        return 143;
    if (status == RunStatus::DeadlineExceeded)
        return 124;
    return 130;
}

/** Stderr notice that partial results follow. */
void
reportStop(const char *what, RunStatus status, std::size_t visited,
           std::size_t unvisited)
{
    std::cerr << what << " stopped early (" << toString(status)
              << "): " << visited << " of " << (visited + unvisited)
              << " grid points visited; partial results below are "
                 "deterministic and valid\n";
}

/** Options shared by every subcommand. */
void
addCommonOptions(ArgParser &parser)
{
    parser.addOption("model", "model preset name", "145b");
    parser.addOption("model-file",
                     "model config file (overrides --model)", "");
    parser.addOption("accel", "accelerator preset name", "a100");
    parser.addOption("accel-file",
                     "accelerator config file (overrides --accel)",
                     "");
    parser.addOption("system-file",
                     "system config file (overrides the cluster "
                     "options)", "");
    parser.addOption("intra", "intra-node interconnect preset",
                     "nvlink-a100");
    parser.addOption("inter", "inter-node interconnect preset",
                     "hdr");
    parser.addOption("nodes", "number of nodes", "128");
    parser.addOption("per-node", "accelerators per node", "8");
    parser.addOption("nics", "NICs per node (0 = one per "
                             "accelerator)", "0");
    parser.addOption("batch", "global batch size", "8192");
    parser.addOption("tokens", "training-token budget", "300e9");
    parser.addOption("eff-a", "efficiency curve parameter a", "0.9");
    parser.addOption("eff-b", "efficiency curve parameter b", "30");
    parser.addOption("eff-floor", "efficiency floor", "0.25");
    parser.addOption("bubble-r", "bubble-overlap ratio R", "0.1");
    parser.addOption("microbatch",
                     "microbatch size (0 = B/(DP*PP))", "0");
    parser.addOption("threads",
                     "sweep worker threads (0 = AMPED_THREADS env "
                     "or all cores, 1 = serial)", "0");
}

void
addMappingOptions(ArgParser &parser)
{
    parser.addOption("tp-intra", "tensor parallel, intra-node", "1");
    parser.addOption("pp-intra", "pipeline parallel, intra-node", "1");
    parser.addOption("dp-intra", "data parallel, intra-node", "1");
    parser.addOption("tp-inter", "tensor parallel, inter-node", "1");
    parser.addOption("pp-inter", "pipeline parallel, inter-node", "1");
    parser.addOption("dp-inter", "data parallel, inter-node", "1");
}

model::TransformerConfig
modelConfigFrom(const ArgParser &parser)
{
    if (!parser.get("model-file").empty())
        return explore::modelFromFile(parser.get("model-file"));
    return explore::modelByName(parser.get("model"));
}

hw::AcceleratorConfig
acceleratorConfigFrom(const ArgParser &parser)
{
    if (!parser.get("accel-file").empty())
        return explore::acceleratorFromFile(parser.get("accel-file"));
    return explore::acceleratorByName(parser.get("accel"));
}

net::SystemConfig
systemFrom(const ArgParser &parser)
{
    if (!parser.get("system-file").empty())
        return explore::systemFromFile(parser.get("system-file"));
    net::SystemConfig sys;
    sys.numNodes = parser.getInt("nodes");
    sys.acceleratorsPerNode = parser.getInt("per-node");
    sys.intraLink = explore::interconnectByName(parser.get("intra"));
    sys.interLink = explore::interconnectByName(parser.get("inter"));
    const std::int64_t nics = parser.getInt("nics");
    sys.nicsPerNode = nics > 0 ? nics : sys.acceleratorsPerNode;
    sys.name = std::to_string(sys.numNodes) + "x" +
               std::to_string(sys.acceleratorsPerNode) + " " +
               parser.get("accel") + " / " + parser.get("inter");
    sys.validate();
    return sys;
}

core::AmpedModel
modelFrom(const ArgParser &parser)
{
    core::ModelOptions options = validate::calibrations::
        nvswitchOptions(parser.getInt("per-node"));
    options.bubbleOverlapRatio = parser.getDouble("bubble-r");
    const double a = parser.getDouble("eff-a");
    const double floor =
        std::min(parser.getDouble("eff-floor"), a);
    return core::AmpedModel(
        modelConfigFrom(parser), acceleratorConfigFrom(parser),
        hw::MicrobatchEfficiency(a, parser.getDouble("eff-b"), floor),
        systemFrom(parser), options);
}

core::TrainingJob
jobFrom(const ArgParser &parser)
{
    core::TrainingJob job;
    job.batchSize = parser.getDouble("batch");
    job.totalTrainingTokens = parser.getDouble("tokens");
    const double ub = parser.getDouble("microbatch");
    if (ub > 0.0)
        job.microbatching.microbatchSizeOverride = ub;
    return job;
}

mapping::ParallelismConfig
mappingFrom(const ArgParser &parser)
{
    return mapping::makeMapping(
        parser.getInt("tp-intra"), parser.getInt("pp-intra"),
        parser.getInt("dp-intra"), parser.getInt("tp-inter"),
        parser.getInt("pp-inter"), parser.getInt("dp-inter"));
}

int
cmdEvaluate(const std::vector<std::string> &args, bool breakdown)
{
    ArgParser parser;
    addCommonOptions(parser);
    addMappingOptions(parser);
    parser.parse(args);

    const auto model = modelFrom(parser);
    const auto result =
        model.evaluate(mappingFrom(parser), jobFrom(parser));

    std::cout << "mapping:        "
              << mappingFrom(parser).toString() << "\n"
              << "microbatch:     " << result.microbatchSize
              << " (eff "
              << units::formatFixed(result.efficiency, 3) << ")\n"
              << "time per batch: "
              << units::formatDuration(result.timePerBatch) << "\n"
              << "training time:  "
              << units::formatDuration(result.totalTime) << "\n"
              << "throughput:     "
              << units::formatFlops(result.achievedFlopsPerGpu)
              << " per GPU, "
              << units::formatCount(result.tokensPerSecond)
              << " tokens/s\n";
    if (breakdown) {
        std::cout << "\n" << explore::breakdownTable(result);
    }
    return 0;
}

int
cmdExplore(const std::vector<std::string> &args)
{
    ArgParser parser;
    addCommonOptions(parser);
    addDeadlineOption(parser);
    parser.addOption("top", "how many mappings to print", "10");
    parser.addOption("max-grid-points",
                     "reject sweeps whose mapping x batch grid "
                     "exceeds this many points (0 = unlimited)", "0");
    parser.addFlag("memory-check",
                   "drop mappings that exceed device memory");
    parser.addFlag("csv", "emit CSV instead of an aligned table");
    parser.parse(args);

    const auto model = modelFrom(parser);
    explore::preflightGridPoints(
        model.system(), model.opCounter().config().numLayers,
        /*num_jobs=*/1,
        static_cast<std::size_t>(parser.getInt("max-grid-points")));

    explore::Explorer explorer(model);
    explorer.setThreads(
        static_cast<unsigned>(parser.getInt("threads")));
    explorer.setCancelToken(tokenFrom(parser));
    if (parser.getFlag("memory-check")) {
        explorer.setMemoryModel(core::MemoryModel(
            model::OpCounter(modelConfigFrom(parser)),
            acceleratorConfigFrom(parser)));
    }
    auto sweep = explorer.sweepAll({parser.getDouble("batch")},
                                   jobFrom(parser));
    if (sweep.status != RunStatus::Completed)
        reportStop("explore", sweep.status, sweep.visitedPoints,
                   sweep.cancelledUnvisited);
    explore::Explorer::sortByTime(sweep.entries);
    const auto top =
        static_cast<std::size_t>(parser.getInt("top"));
    if (sweep.entries.size() > top)
        sweep.entries.resize(top);

    std::cerr << sweep.entries.size() << " mappings shown; skipped "
              << sweep.skipped << " infeasible";
    if (parser.getFlag("memory-check"))
        std::cerr << ", " << sweep.memorySkipped << " over memory";
    std::cerr << "\n";
    if (parser.getFlag("csv"))
        std::cout << explore::sweepCsv(sweep.entries);
    else
        std::cout << explore::sweepTable(sweep.entries);
    if (sweep.status != RunStatus::Completed)
        return stopExitCode(sweep.status);
    return 0;
}

/** Parses a comma-separated batch list ("2048,4096,8192"). */
std::vector<double>
batchListFrom(const ArgParser &parser)
{
    const std::string list = parser.get("batches");
    if (list.empty())
        return {parser.getDouble("batch")};
    std::vector<double> batches;
    std::size_t start = 0;
    while (start <= list.size()) {
        const std::size_t comma = list.find(',', start);
        const std::string token = list.substr(
            start, comma == std::string::npos ? std::string::npos
                                              : comma - start);
        try {
            std::size_t used = 0;
            const double value = std::stod(token, &used);
            require(used == token.size() && value > 0.0,
                    "--batches entry '", token,
                    "' is not a positive number");
            batches.push_back(value);
        } catch (const UserError &) {
            throw;
        } catch (const std::exception &) {
            throw UserError("--batches entry '" + token +
                            "' is not a positive number");
        }
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return batches;
}

int
cmdOptimize(const std::vector<std::string> &args)
{
    ArgParser parser;
    addCommonOptions(parser);
    addDeadlineOption(parser);
    parser.addOption("top", "how many strategies to return", "5");
    parser.addOption("batches",
                     "comma-separated batch sizes to search "
                     "(empty = just --batch)", "");
    parser.addOption("ep", "expert-parallel degree N_EP", "1");
    parser.addOption("max-grid-points",
                     "reject searches whose mapping x batch grid "
                     "exceeds this many points (0 = unlimited)", "0");
    parser.addFlag("memory-check",
                   "prune mappings that exceed device memory");
    parser.addFlag("csv", "emit CSV instead of an aligned table");
    parser.parse(args);

    const auto model = modelFrom(parser);
    const auto batches = batchListFrom(parser);
    explore::preflightGridPoints(
        model.system(), model.opCounter().config().numLayers,
        batches.size(),
        static_cast<std::size_t>(parser.getInt("max-grid-points")));

    explore::Optimizer optimizer(model);
    optimizer.setThreads(
        static_cast<unsigned>(parser.getInt("threads")));
    optimizer.setCancelToken(tokenFrom(parser));
    if (parser.getFlag("memory-check")) {
        optimizer.setMemoryModel(core::MemoryModel(
            model::OpCounter(modelConfigFrom(parser)),
            acceleratorConfigFrom(parser)));
    }

    explore::OptimizerRequest request;
    request.batchSizes = batches;
    request.jobTemplate = jobFrom(parser);
    request.topK =
        static_cast<std::size_t>(parser.getInt("top"));
    request.expertParallel = parser.getInt("ep");
    const auto result = optimizer.optimize(request);

    const auto &c = result.counters;
    if (result.status != RunStatus::Completed)
        reportStop("optimize", result.status,
                   c.points - c.cancelledUnvisited,
                   c.cancelledUnvisited);
    std::cerr << result.topK.size() << " strategies found; "
              << c.points << " points searched: " << c.evaluated
              << " evaluated, " << c.prunedByBound
              << " pruned by bound, " << c.prunedByMemory
              << " pruned by memory, " << c.skippedInfeasible
              << " infeasible\n";
    if (parser.getFlag("csv"))
        std::cout << explore::sweepCsv(result.topK);
    else
        std::cout << explore::sweepTable(result.topK);
    if (result.status != RunStatus::Completed)
        return stopExitCode(result.status);
    return 0;
}

int
cmdMemory(const std::vector<std::string> &args)
{
    ArgParser parser;
    addCommonOptions(parser);
    addMappingOptions(parser);
    parser.addOption("zero", "ZeRO stage (0-3)", "0");
    parser.parse(args);

    const auto model_cfg = modelConfigFrom(parser);
    const auto accel = acceleratorConfigFrom(parser);
    const auto m = mappingFrom(parser);
    const auto job = jobFrom(parser);
    const double ub = job.microbatching.microbatchSize(
        job.batchSize, m);

    core::MemoryOptions options;
    const std::int64_t stage = parser.getInt("zero");
    require(stage >= 0 && stage <= 3, "--zero must be 0..3, got ",
            stage);
    options.zeroStage = static_cast<core::ZeroStage>(stage);
    core::MemoryModel mm(model::OpCounter(model_cfg), accel, options);
    const auto fp = mm.footprint(m, job.batchSize, ub);

    auto gb = [](double bytes) {
        return units::formatFixed(bytes / 1e9, 2) + " GB";
    };
    std::cout << "mapping:     " << m.toString() << " ("
              << core::zeroStageName(options.zeroStage) << ")\n"
              << "parameters:  " << gb(fp.parameterBytes) << "\n"
              << "gradients:   " << gb(fp.gradientBytes) << "\n"
              << "optimizer:   " << gb(fp.optimizerBytes) << "\n"
              << "activations: " << gb(fp.activationBytes) << "\n"
              << "workspace:   " << gb(fp.workspaceBytes) << "\n"
              << "total:       " << gb(fp.totalBytes()) << " of "
              << gb(accel.memoryBytes) << " -> "
              << (mm.fits(m, job.batchSize, ub) ? "fits"
                                                : "DOES NOT FIT")
              << "\n";
    return 0;
}

int
cmdReport(const std::vector<std::string> &args)
{
    ArgParser parser;
    addCommonOptions(parser);
    addMappingOptions(parser);
    parser.addOption("zero", "ZeRO stage (0-3)", "0");
    parser.addOption("tdp", "accelerator TDP in watts", "400");
    parser.addOption("idle-fraction",
                     "idle power as a fraction of TDP", "0.3");
    parser.parse(args);

    explore::ReportOptions options;
    const std::int64_t stage = parser.getInt("zero");
    require(stage >= 0 && stage <= 3, "--zero must be 0..3, got ",
            stage);
    options.memory.zeroStage = static_cast<core::ZeroStage>(stage);
    options.power.tdpWatts = Watts{parser.getDouble("tdp")};
    options.power.idleFraction = parser.getDouble("idle-fraction");

    std::cout << explore::generateReport(modelFrom(parser),
                                         mappingFrom(parser),
                                         jobFrom(parser), options);
    return 0;
}

int
cmdScale(const std::vector<std::string> &args)
{
    ArgParser parser;
    addCommonOptions(parser);
    parser.addOption("max-nodes", "largest node count to sweep",
                     "256");
    parser.parse(args);

    std::cout << "strong scaling: best mapping per node count, "
              << parser.get("model") << ", batch "
              << parser.get("batch") << "\n";
    TextTable table({"nodes", "accelerators", "best mapping", "days",
                     "speedup", "efficiency"});
    double base_time = 0.0;
    std::int64_t base_nodes = 0;
    for (std::int64_t nodes = 1;
         nodes <= parser.getInt("max-nodes"); nodes *= 2) {
        net::SystemConfig sys = systemFrom(parser);
        sys.numNodes = nodes;
        core::ModelOptions options = validate::calibrations::
            nvswitchOptions(sys.acceleratorsPerNode);
        options.bubbleOverlapRatio = parser.getDouble("bubble-r");
        const double a = parser.getDouble("eff-a");
        core::AmpedModel amped(
            modelConfigFrom(parser), acceleratorConfigFrom(parser),
            hw::MicrobatchEfficiency(
                a, parser.getDouble("eff-b"),
                std::min(parser.getDouble("eff-floor"), a)),
            sys, options);
        explore::Explorer explorer(amped);
        explorer.setThreads(
            static_cast<unsigned>(parser.getInt("threads")));
        auto sweep = explorer.sweepAll(
            {parser.getDouble("batch")}, jobFrom(parser));
        const auto best = explore::Explorer::best(sweep);
        if (!best) {
            table.addRow({std::to_string(nodes),
                          std::to_string(sys.totalAccelerators()),
                          "(none feasible)", "-", "-", "-"});
            continue;
        }
        if (base_time == 0.0) {
            base_time = best->result.totalTime;
            base_nodes = nodes;
        }
        const double speedup = base_time / best->result.totalTime;
        const double ideal =
            static_cast<double>(nodes) /
            static_cast<double>(base_nodes);
        table.addRow(
            {std::to_string(nodes),
             std::to_string(sys.totalAccelerators()),
             best->mapping.toString(),
             units::formatFixed(best->result.totalTime / 86400.0, 1),
             units::formatFixed(speedup, 2) + "x",
             units::formatFixed(100.0 * speedup / ideal, 1) + " %"});
    }
    table.print(std::cout);
    return 0;
}

int
cmdResilience(const std::vector<std::string> &args)
{
    ArgParser parser;
    addCommonOptions(parser);
    addMappingOptions(parser);
    parser.addOption("device-mtbf-years",
                     "per-device mean time between failures in years "
                     "(0 = failure-free)", "5");
    parser.addOption("restart-minutes",
                     "restart cost after a failure (detect, reload, "
                     "rewind)", "10");
    parser.addOption("interval-minutes",
                     "checkpoint interval (0 = Daly optimal)", "0");
    parser.addOption("storage-gbits",
                     "per-device checkpoint write bandwidth", "200");
    parser.addOption("storage-latency-us",
                     "checkpoint storage latency", "100");
    parser.addOption("mc-replications",
                     "Monte-Carlo cross-check replications (0 = "
                     "analytic only)", "0");
    parser.addOption("mc-seed", "Monte-Carlo base seed", "1");
    addDeadlineOption(parser);
    parser.parse(args);

    const auto model = modelFrom(parser);
    const auto m = mappingFrom(parser);
    const auto job = jobFrom(parser);
    const auto result = model.evaluate(m, job);

    const core::MemoryModel memory(model.opCounter(),
                                   model.accelerator());
    const auto footprint =
        memory.footprint(m, job.batchSize, result.microbatchSize);
    const double ckpt_bytes = core::checkpointBytes(footprint);
    const net::LinkConfig storage{
        "storage",
        Seconds{parser.getDouble("storage-latency-us") * 1e-6},
        units::gigabitsPerSecondBw(
            parser.getDouble("storage-gbits"))};

    core::ResilienceConfig config;
    const double mtbf_years = parser.getDouble("device-mtbf-years");
    require(mtbf_years >= 0.0,
            "--device-mtbf-years must be >= 0, got ", mtbf_years);
    const double per_device_rate =
        mtbf_years > 0.0 ? 1.0 / (mtbf_years * 365.25 * 86400.0)
                         : 0.0;
    config.mtbfSeconds = core::clusterMtbfSeconds(
        per_device_rate, model.system().totalAccelerators());
    config.checkpointWriteSeconds =
        core::checkpointWriteSeconds(ckpt_bytes, storage);
    config.restartSeconds =
        Seconds{parser.getDouble("restart-minutes") * 60.0};
    config.checkpointIntervalSeconds =
        Seconds{parser.getDouble("interval-minutes") * 60.0};
    if (config.checkpointIntervalSeconds.value() == 0.0
        && !std::isfinite(config.mtbfSeconds.value())) {
        // Failure-free cluster: Daly says "never checkpoint".
        config.checkpointIntervalSeconds =
            Seconds{std::numeric_limits<double>::infinity()};
    }

    const auto estimate =
        core::estimateTimeToTrain(Seconds{result.totalTime}, config);
    const auto days = [](double seconds) {
        return units::formatFixed(seconds / 86400.0, 2) + " days";
    };
    std::cout << "mapping:            " << m.toString() << "\n"
              << "checkpoint size:    "
              << units::formatFixed(ckpt_bytes / 1e9, 2)
              << " GB/device (params + optimizer)\n"
              << "checkpoint write:   "
              << units::formatDuration(
                     config.checkpointWriteSeconds.value())
              << "\n"
              << "cluster MTBF:       "
              << (std::isfinite(config.mtbfSeconds.value())
                      ? units::formatDuration(
                            config.mtbfSeconds.value())
                      : std::string("infinite"))
              << "\n"
              << "checkpoint every:   "
              << (std::isfinite(estimate.intervalSeconds.value())
                      ? units::formatDuration(
                            estimate.intervalSeconds.value())
                      : std::string("never"))
              << " (" << estimate.segmentCount << " segments)\n"
              << "failure-free solve: " << days(estimate.solveSeconds.value())
              << "\n"
              << "expected failures:  "
              << units::formatFixed(estimate.expectedFailures, 1)
              << "\n"
              << "expected training:  "
              << days(estimate.expectedSeconds.value()) << " (+"
              << units::formatFixed(
                     100.0 * estimate.overheadFraction(), 2)
              << " % over the failure-free solve)\n";

    const auto replications =
        static_cast<std::size_t>(parser.getInt("mc-replications"));
    if (replications > 0) {
        const auto stats = core::monteCarloTimeToTrain(
            Seconds{result.totalTime}, config, replications,
            static_cast<std::uint64_t>(parser.getInt("mc-seed")),
            ThreadPool::shared(),
            static_cast<std::size_t>(parser.getInt("threads")),
            tokenFrom(parser));
        if (stats.status != RunStatus::Completed) {
            std::cerr << "resilience Monte-Carlo stopped early ("
                      << toString(stats.status) << "): statistics "
                      << "cover " << stats.replications << " of "
                      << replications << " replications\n";
        }
        std::cout << "Monte-Carlo check:  "
                  << days(stats.meanSeconds.value()) << " +/- "
                  << days(stats.standardError.value()) << " ("
                  << stats.replications << " replications)\n";
        if (stats.status != RunStatus::Completed)
            return stopExitCode(stats.status);
    }
    return 0;
}

/**
 * `amped trace`: one simulated training step, described by a
 * key = value config file, exported as a Chrome-trace JSON (open in
 * chrome://tracing or https://ui.perfetto.dev) and/or a structured
 * run report that also carries the analytical AMPeD prediction for
 * the same configuration.
 *
 * Config keys (see examples/configs/):
 *   model     = model preset (default mingpt)
 *   accel     = accelerator preset (default v100)
 *   link      = interconnect preset for the device link
 *               (default nvlink-v100)
 *   schedule  = dp | gpipe | tp        (default dp)
 *   devices   = DP replicas / pipeline stages / TP shards (default 8)
 *   per-device-batch = per-replica batch for dp/tp (default 32)
 *   microbatch       = GPipe microbatch size (default 8)
 *   num-microbatches = GPipe microbatch count (default devices)
 *   eff-a, eff-b, eff-floor = efficiency curve (default 0.9/30/0.25)
 *   backward-multiplier     = backward/forward ratio (default 3)
 */
int
cmdTrace(const std::vector<std::string> &args)
{
    ArgParser parser;
    parser.addOption("config", "key = value run description file",
                     "");
    parser.addOption("trace-out",
                     "Chrome-trace JSON output path (optional)", "");
    parser.addOption("report-out",
                     "run-report JSON output path (optional)", "");
    parser.parse(args);
    require(!parser.get("config").empty(),
            "trace: --config <file> is required");

    const auto config =
        KeyValueConfig::fromFile(parser.get("config"));
    config.requireOnly({"model", "accel", "link", "schedule",
                        "devices", "per-device-batch", "microbatch",
                        "num-microbatches", "eff-a", "eff-b",
                        "eff-floor", "backward-multiplier"});

    const std::string model_name =
        config.getString("model", "mingpt");
    const std::string accel_name = config.getString("accel", "v100");
    const std::string link_name =
        config.getString("link", "nvlink-v100");
    const std::string schedule =
        config.getString("schedule", "dp");
    const std::int64_t devices = config.getInt("devices", 8);
    require(devices >= 1, "trace: devices must be >= 1, got ",
            devices);

    const auto model_cfg = explore::modelByName(model_name);
    const auto accel = explore::acceleratorByName(accel_name);
    const auto link = explore::interconnectByName(link_name);
    const double eff_a = config.getDouble("eff-a", 0.9);
    const hw::MicrobatchEfficiency eff(
        eff_a, config.getDouble("eff-b", 30.0),
        std::min(config.getDouble("eff-floor", 0.25), eff_a));

    // Simulated step.
    sim::TrainingSimulator simulator(model_cfg, accel, eff, link);
    simulator.setBackwardMultiplier(
        config.getDouble("backward-multiplier", 3.0));

    sim::SimOutcome outcome;
    mapping::ParallelismConfig mapping;
    double batch = 0.0;
    core::TrainingJob job;
    if (schedule == "dp") {
        const double per_device =
            config.getDouble("per-device-batch", 32.0);
        outcome =
            simulator.simulateDataParallelStep(devices, per_device);
        mapping = mapping::makeMapping(1, 1, devices, 1, 1, 1);
        batch = per_device * static_cast<double>(devices);
    } else if (schedule == "gpipe") {
        const double microbatch =
            config.getDouble("microbatch", 8.0);
        const std::int64_t num_microbatches =
            config.getInt("num-microbatches", devices);
        outcome = simulator.simulateGPipeStep(devices, microbatch,
                                              num_microbatches);
        mapping = mapping::makeMapping(1, devices, 1, 1, 1, 1);
        batch =
            microbatch * static_cast<double>(num_microbatches);
        job.microbatching.numMicrobatchesOverride =
            static_cast<double>(num_microbatches);
    } else if (schedule == "tp") {
        const double tp_batch =
            config.getDouble("per-device-batch", 32.0);
        outcome =
            simulator.simulateTensorParallelStep(devices, tp_batch);
        mapping = mapping::makeMapping(devices, 1, 1, 1, 1, 1);
        batch = tp_batch;
    } else {
        fatal("trace: unknown schedule '", schedule,
              "' (supported: dp, gpipe, tp)");
    }

    // Matching analytical prediction: one node of `devices`
    // accelerators on the same link, one batch.
    net::SystemConfig system;
    system.name = "1x" + std::to_string(devices) + " " + accel_name;
    system.numNodes = 1;
    system.acceleratorsPerNode = devices;
    system.intraLink = link;
    system.interLink = explore::interconnectByName("hdr");
    system.nicsPerNode = devices;
    core::AmpedModel amped_model(
        model_cfg, accel, eff, system,
        validate::calibrations::nvswitchOptions(devices));
    job.batchSize = batch;
    job.numBatchesOverride = 1.0;
    const auto evaluation = amped_model.evaluate(mapping, job);

    obs::Json config_echo = obs::Json::object();
    config_echo.set("config_file", parser.get("config"));
    config_echo.set("model", model_name);
    config_echo.set("accelerator", accel_name);
    config_echo.set("link", link_name);
    config_echo.set("schedule", schedule);
    config_echo.set("devices", devices);
    config_echo.set("batch", batch);

    if (!parser.get("trace-out").empty()) {
        obs::ChromeTraceBuilder trace;
        trace.addRun(*outcome.graph, outcome.raw, schedule,
                     outcome.failure.events);
        trace.writeFile(parser.get("trace-out"));
        std::cout << "trace:  " << parser.get("trace-out") << " ("
                  << trace.eventCount() << " events)\n";
    }
    if (!parser.get("report-out").empty()) {
        obs::RunReportBuilder report;
        report.setConfig(std::move(config_echo))
            .setAnalytical(evaluation)
            .addSimulation(schedule, outcome)
            .setMetrics(obs::MetricsRegistry::global());
        report.writeFile(parser.get("report-out"));
        std::cout << "report: " << parser.get("report-out") << "\n";
    }

    std::cout << "schedule:        " << schedule << " x " << devices
              << " (" << model_name << " on " << accel_name
              << ")\n"
              << "simulated step:  "
              << units::formatDuration(outcome.stepTime) << "\n"
              << "analytic batch:  "
              << units::formatDuration(evaluation.timePerBatch)
              << "\n";
    return 0;
}

/**
 * `amped serve` — the long-lived evaluation service.  --stdio serves
 * newline-delimited requests on stdin/stdout (no sockets; what the
 * tests, the load generator, and CI drive); the default binds a
 * loopback TCP socket.  SIGINT/SIGTERM trip the root token: an
 * in-flight sweep stops at its next checkpoint, the partial response
 * is still flushed, and the process exits 130/143.
 */
int
cmdServe(const std::vector<std::string> &args)
{
    ArgParser parser;
    parser.addOption("config",
                     "server config file (see examples/configs/"
                     "serve_default.cfg)", "");
    parser.addOption("port",
                     "loopback TCP port (0 = ephemeral)", "7787");
    parser.addFlag("stdio",
                   "serve stdin/stdout pipes instead of TCP");
    parser.addOption("threads",
                     "sweep worker threads override (-1 = config "
                     "value)", "-1");
    parser.parse(args);

    serve::ServerOptions options;
    if (!parser.get("config").empty()) {
        options = serve::optionsFromConfig(
            KeyValueConfig::fromFile(parser.get("config")));
    }
    const std::int64_t threads = parser.getInt("threads");
    if (threads >= 0)
        options.threads = static_cast<unsigned>(threads);

    serve::Server server(options);
    server.setCancelToken(g_root_token.child());

    RunStatus status;
    if (parser.getFlag("stdio")) {
        status = server.serveStream(std::cin, std::cout);
    } else {
        const std::int64_t port = parser.getInt("port");
        require(port >= 0 && port <= 65535,
                "--port must be in [0, 65535], got ", port);
        status = server.serveTcp(static_cast<std::uint16_t>(port));
    }
    if (status != RunStatus::Completed) {
        std::cerr << "serve stopped (" << toString(status) << ")\n";
        return stopExitCode(status);
    }
    return 0;
}

int
cmdPresets()
{
    auto print = [](const char *label,
                    const std::vector<std::string> &names) {
        std::cout << label << ":";
        for (const auto &name : names)
            std::cout << ' ' << name;
        std::cout << '\n';
    };
    print("models", explore::modelNames());
    print("accelerators", explore::acceleratorNames());
    print("interconnects", explore::interconnectNames());
    return 0;
}

int
usage()
{
    std::cout
        << "usage: amped <evaluate|breakdown|explore|optimize|memory|"
           "scale|resilience|report|trace|serve|presets> [options]\n"
           "run 'amped <subcommand> --help' style options are shown "
           "on any parse error.\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    installSignalHandlers();
    const std::string command = argv[1];
    std::vector<std::string> args(argv + 2, argv + argc);
    try {
        if (command == "evaluate")
            return cmdEvaluate(args, /*breakdown=*/false);
        if (command == "breakdown")
            return cmdEvaluate(args, /*breakdown=*/true);
        if (command == "explore")
            return cmdExplore(args);
        if (command == "optimize")
            return cmdOptimize(args);
        if (command == "memory")
            return cmdMemory(args);
        if (command == "scale")
            return cmdScale(args);
        if (command == "resilience")
            return cmdResilience(args);
        if (command == "report")
            return cmdReport(args);
        if (command == "trace")
            return cmdTrace(args);
        if (command == "serve")
            return cmdServe(args);
        if (command == "presets")
            return cmdPresets();
        std::cerr << "unknown subcommand '" << command << "'\n";
        return usage();
    } catch (const amped::UserError &error) {
        std::cerr << "error: " << error.what() << '\n';
        return 1;
    }
}
